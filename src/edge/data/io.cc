#include "edge/data/io.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>

#include "edge/common/string_util.h"
#include "edge/fault/fault.h"

namespace edge::data {

namespace {

/// Tabs/newlines are the format's structure; squash them inside text.
std::string SanitizeText(std::string text) {
  for (char& c : text) {
    if (c == '\t' || c == '\n' || c == '\r') c = ' ';
  }
  return text;
}

std::vector<std::string> SplitTabs(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  for (char c : line) {
    if (c == '\t') {
      fields.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  fields.push_back(current);
  return fields;
}

bool ParseDouble(const std::string& s, double* out) {
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end != nullptr && *end == '\0' && !s.empty();
}

}  // namespace

Status WriteTweetsTsv(const Dataset& dataset, std::ostream* out) {
  EDGE_CHECK(out != nullptr);
  std::ostream& os = *out;
  os.precision(12);
  os << "#edge-tweets v1\t" << dataset.name << "\t" << dataset.start_date << "\t"
     << dataset.timeline_days << "\t" << dataset.region.min_lat << "\t"
     << dataset.region.max_lat << "\t" << dataset.region.min_lon << "\t"
     << dataset.region.max_lon << "\n";
  for (const Tweet& t : dataset.tweets) {
    os << t.id << "\t" << t.time_days << "\t" << t.location.lat << "\t"
       << t.location.lon << "\t" << SanitizeText(t.text) << "\n";
  }
  if (!os.good()) return Status::Internal("stream write failed");
  return Status::Ok();
}

Result<Dataset> ReadTweetsTsv(std::istream* in) {
  EDGE_CHECK(in != nullptr);
  if (EDGE_FAULT_POINT("io.data.read") == fault::Action::kError) {
    return Status::Internal("injected fault at 'io.data.read'");
  }
  Dataset ds;
  std::string line;
  bool saw_header = false;
  size_t line_number = 0;
  while (std::getline(*in, line)) {
    ++line_number;
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::vector<std::string> fields = SplitTabs(line);
      if (fields[0] == "#edge-tweets v1") {
        if (fields.size() != 8) {
          return Status::InvalidArgument("bad header arity at line " +
                                         std::to_string(line_number));
        }
        ds.name = fields[1];
        ds.start_date = fields[2];
        bool ok = ParseDouble(fields[3], &ds.timeline_days) &&
                  ParseDouble(fields[4], &ds.region.min_lat) &&
                  ParseDouble(fields[5], &ds.region.max_lat) &&
                  ParseDouble(fields[6], &ds.region.min_lon) &&
                  ParseDouble(fields[7], &ds.region.max_lon);
        if (!ok) {
          return Status::InvalidArgument("bad header numbers at line " +
                                         std::to_string(line_number));
        }
        saw_header = true;
      }
      continue;  // Other comment lines are skipped.
    }
    std::vector<std::string> fields = SplitTabs(line);
    if (fields.size() != 5) {
      return Status::InvalidArgument("expected 5 fields at line " +
                                     std::to_string(line_number));
    }
    Tweet tweet;
    double id = 0.0;
    bool ok = ParseDouble(fields[0], &id) && ParseDouble(fields[1], &tweet.time_days) &&
              ParseDouble(fields[2], &tweet.location.lat) &&
              ParseDouble(fields[3], &tweet.location.lon);
    if (!ok) {
      return Status::InvalidArgument("bad numeric field at line " +
                                     std::to_string(line_number));
    }
    tweet.id = static_cast<int64_t>(id);
    tweet.text = fields[4];
    ds.tweets.push_back(std::move(tweet));
  }
  if (!saw_header) return Status::InvalidArgument("missing #edge-tweets v1 header");
  std::sort(ds.tweets.begin(), ds.tweets.end(),
            [](const Tweet& a, const Tweet& b) { return a.time_days < b.time_days; });
  return ds;
}

Result<text::Gazetteer> ReadGazetteerTsv(std::istream* in) {
  EDGE_CHECK(in != nullptr);
  if (EDGE_FAULT_POINT("io.gazetteer.read") == fault::Action::kError) {
    return Status::Internal("injected fault at 'io.gazetteer.read'");
  }
  text::Gazetteer gazetteer;
  std::string line;
  size_t line_number = 0;
  size_t entries = 0;
  while (std::getline(*in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> fields = SplitTabs(line);
    if (fields.size() != 3) {
      return Status::InvalidArgument("expected canonical<TAB>category<TAB>surface at "
                                     "line " +
                                     std::to_string(line_number));
    }
    text::EntityCategory category = text::EntityCategory::kOther;
    bool known = false;
    for (int c = 0; c <= static_cast<int>(text::EntityCategory::kOther); ++c) {
      if (fields[1] == text::EntityCategoryName(static_cast<text::EntityCategory>(c))) {
        category = static_cast<text::EntityCategory>(c);
        known = true;
      }
    }
    if (!known) {
      return Status::InvalidArgument("unknown category '" + fields[1] + "' at line " +
                                     std::to_string(line_number));
    }
    gazetteer.AddEntry(fields[2], category, fields[0]);
    ++entries;
  }
  if (entries == 0) return Status::InvalidArgument("empty gazetteer");
  return gazetteer;
}

}  // namespace edge::data
