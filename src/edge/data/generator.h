#ifndef EDGE_DATA_GENERATOR_H_
#define EDGE_DATA_GENERATOR_H_

#include <string>
#include <vector>

#include "edge/common/rng.h"
#include "edge/data/tweet.h"
#include "edge/data/world.h"
#include "edge/geo/projection.h"
#include "edge/text/ner.h"

namespace edge::data {

/// TwitterSim: generative model of a metropolitan tweet stream (DESIGN.md §1).
/// Stands in for the crawled Twitter datasets the paper used. Each tweet is
/// produced by: sample a posting time; sample a topic active at that time (or
/// none); sample a POI from the topic's affinity (Observation O2's
/// co-occurrence bridge); sample the true location around one of the POI's
/// branches (multi-branch POIs create Observation O1's multimodality); decide
/// which entities the text actually names; render natural-looking text the
/// NER pipeline must process like real tweets.
class TweetGenerator {
 public:
  explicit TweetGenerator(WorldConfig config);

  /// Generates `n` tweets sorted chronologically.
  Dataset Generate(size_t n) const;

  /// Generates tweets until `n` of them contain at least one of `keywords`
  /// (case-insensitive substring match, like the paper's COVID-19 keyword
  /// crawl) and returns only the matching ones.
  Dataset GenerateWithKeywords(size_t n, const std::vector<std::string>& keywords) const;

  /// Gazetteer holding every entity surface form this world can emit; this
  /// is the knowledge base the TweetNer substitute runs with.
  text::Gazetteer BuildGazetteer() const;

  const WorldConfig& config() const { return config_; }

 private:
  Tweet MakeTweet(double time_days, Rng* rng) const;
  geo::LatLon SamplePoiLocation(const PoiSpec& poi, Rng* rng) const;
  /// Indices of fine POIs with a branch within `radius_km` of `loc`
  /// (excluding `exclude`).
  std::vector<size_t> NearbyFinePois(const geo::LatLon& loc, double radius_km,
                                     size_t exclude) const;
  /// Index of a coarse-grained POI covering `loc`, or SIZE_MAX.
  size_t CoveringCoarseArea(const geo::LatLon& loc, Rng* rng) const;
  std::string RenderText(const std::vector<std::string>& mention_surface_forms,
                         Rng* rng) const;

  WorldConfig config_;
  geo::LocalProjection projection_;
};

/// Canonical underscore-joined token for a surface form ("majestic theatre"
/// -> "majestic_theatre"; sigiled topics pass through unchanged).
std::string CanonicalName(const std::string& surface_form);

}  // namespace edge::data

#endif  // EDGE_DATA_GENERATOR_H_
