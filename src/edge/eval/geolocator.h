#ifndef EDGE_EVAL_GEOLOCATOR_H_
#define EDGE_EVAL_GEOLOCATOR_H_

#include <string>

#include "edge/data/pipeline.h"
#include "edge/geo/latlon.h"

namespace edge::eval {

/// Common interface every geolocation method implements — EDGE, the seven
/// published baselines and the four ablations. Fit() sees only the training
/// split; PredictPoint() returns the single-location conversion used by the
/// distance metrics (Eq. 14 for mixture methods, the winning cell centre for
/// grid methods). Returning false means the method cannot predict this tweet
/// (Hyper-local only covers tweets containing a geo-specific n-gram; Table
/// III reports its coverage percentage next to its scores).
class Geolocator {
 public:
  virtual ~Geolocator() = default;

  /// Display name as it appears in the paper's tables.
  virtual std::string name() const = 0;

  /// Trains on the dataset's training split.
  virtual void Fit(const data::ProcessedDataset& dataset) = 0;

  /// Point prediction for one tweet; false when the method abstains.
  virtual bool PredictPoint(const data::ProcessedTweet& tweet, geo::LatLon* out) = 0;
};

}  // namespace edge::eval

#endif  // EDGE_EVAL_GEOLOCATOR_H_
