#ifndef EDGE_EVAL_GEOLOCATOR_H_
#define EDGE_EVAL_GEOLOCATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "edge/data/pipeline.h"
#include "edge/geo/latlon.h"

namespace edge::eval {

/// Common interface every geolocation method implements — EDGE, the seven
/// published baselines and the four ablations. Fit() sees only the training
/// split; PredictPoint() returns the single-location conversion used by the
/// distance metrics (Eq. 14 for mixture methods, the winning cell centre for
/// grid methods). Returning false means the method cannot predict this tweet
/// (Hyper-local only covers tweets containing a geo-specific n-gram; Table
/// III reports its coverage percentage next to its scores).
class Geolocator {
 public:
  virtual ~Geolocator() = default;

  /// Display name as it appears in the paper's tables.
  virtual std::string name() const = 0;

  /// Trains on the dataset's training split.
  virtual void Fit(const data::ProcessedDataset& dataset) = 0;

  /// Point prediction for one tweet; false when the method abstains.
  virtual bool PredictPoint(const data::ProcessedTweet& tweet, geo::LatLon* out) = 0;

  /// Batched point prediction: resizes *points / *predicted to tweets.size();
  /// predicted[i] != 0 iff the method produced points[i]. The default loops
  /// PredictPoint() in order, so stateful or non-thread-safe methods keep
  /// their exact legacy behaviour. Methods whose prediction path is const and
  /// thread-safe (EdgeModel) override this to evaluate tweets in parallel;
  /// overrides must return exactly what the serial loop would.
  virtual void PredictPoints(const std::vector<data::ProcessedTweet>& tweets,
                             std::vector<geo::LatLon>* points,
                             std::vector<uint8_t>* predicted) {
    points->assign(tweets.size(), geo::LatLon{});
    predicted->assign(tweets.size(), 0);
    for (size_t i = 0; i < tweets.size(); ++i) {
      (*predicted)[i] = PredictPoint(tweets[i], &(*points)[i]) ? 1 : 0;
    }
  }
};

}  // namespace edge::eval

#endif  // EDGE_EVAL_GEOLOCATOR_H_
