#ifndef EDGE_EVAL_METRICS_H_
#define EDGE_EVAL_METRICS_H_

#include <string>
#include <vector>

#include "edge/data/pipeline.h"
#include "edge/eval/geolocator.h"

namespace edge::eval {

/// The paper's Table III metric set (§IV-C) plus coverage bookkeeping.
struct MetricResults {
  std::string method;
  double mean_km = 0.0;    ///< Mean haversine error over predicted tweets.
  double median_km = 0.0;  ///< Median haversine error.
  double at_3km = 0.0;     ///< Fraction of predictions within 3 km.
  double at_5km = 0.0;     ///< Fraction within 5 km.
  size_t predicted = 0;    ///< Tweets the method predicted.
  size_t abstained = 0;    ///< Tweets it could not predict (Hyper-local).

  /// Fraction of test tweets the method covered.
  double Coverage() const {
    size_t total = predicted + abstained;
    return total == 0 ? 0.0 : static_cast<double>(predicted) / static_cast<double>(total);
  }
};

/// Per-test-tweet haversine errors (km) of a fitted geolocator; abstentions
/// are recorded in *abstained and produce no distance.
std::vector<double> PredictionErrorsKm(Geolocator* method,
                                       const data::ProcessedDataset& dataset,
                                       size_t* abstained);

/// Summarizes errors into the Table III metric row.
MetricResults SummarizeErrors(const std::string& method, std::vector<double> errors_km,
                              size_t abstained);

/// Fits nothing; evaluates a fitted method end-to-end.
MetricResults EvaluateGeolocator(Geolocator* method,
                                 const data::ProcessedDataset& dataset);

/// RDP(r): fraction of test tweets whose true location lies within r km of
/// the predicted location (Fig. 5 plots this against r; RDP(3) = @3km and
/// RDP(5) = @5km). One value per radius, in order.
std::vector<double> RdpSweep(const std::vector<double>& errors_km, size_t abstained,
                             const std::vector<double>& radii_km);

}  // namespace edge::eval

#endif  // EDGE_EVAL_METRICS_H_
