#include "edge/eval/metrics.h"

#include "edge/common/check.h"
#include "edge/common/math_util.h"

namespace edge::eval {

std::vector<double> PredictionErrorsKm(Geolocator* method,
                                       const data::ProcessedDataset& dataset,
                                       size_t* abstained) {
  EDGE_CHECK(method != nullptr);
  EDGE_CHECK(abstained != nullptr);
  *abstained = 0;
  // Batched so methods with a thread-safe prediction path (EdgeModel) can
  // evaluate tweets in parallel; the error vector keeps the per-tweet order
  // of the old serial loop either way.
  std::vector<geo::LatLon> points;
  std::vector<uint8_t> predicted;
  method->PredictPoints(dataset.test, &points, &predicted);
  std::vector<double> errors;
  errors.reserve(dataset.test.size());
  for (size_t i = 0; i < dataset.test.size(); ++i) {
    if (!predicted[i]) {
      ++(*abstained);
      continue;
    }
    errors.push_back(geo::HaversineKm(dataset.test[i].location, points[i]));
  }
  return errors;
}

MetricResults SummarizeErrors(const std::string& method, std::vector<double> errors_km,
                              size_t abstained) {
  MetricResults r;
  r.method = method;
  r.predicted = errors_km.size();
  r.abstained = abstained;
  if (errors_km.empty()) return r;
  r.mean_km = Mean(errors_km);
  size_t within3 = 0;
  size_t within5 = 0;
  for (double e : errors_km) {
    if (e <= 3.0) ++within3;
    if (e <= 5.0) ++within5;
  }
  r.at_3km = static_cast<double>(within3) / static_cast<double>(errors_km.size());
  r.at_5km = static_cast<double>(within5) / static_cast<double>(errors_km.size());
  r.median_km = Median(std::move(errors_km));
  return r;
}

MetricResults EvaluateGeolocator(Geolocator* method,
                                 const data::ProcessedDataset& dataset) {
  size_t abstained = 0;
  std::vector<double> errors = PredictionErrorsKm(method, dataset, &abstained);
  return SummarizeErrors(method->name(), std::move(errors), abstained);
}

std::vector<double> RdpSweep(const std::vector<double>& errors_km, size_t abstained,
                             const std::vector<double>& radii_km) {
  (void)abstained;  // RDP is over predicted tweets, matching @3km/@5km.
  std::vector<double> out;
  out.reserve(radii_km.size());
  for (double r : radii_km) {
    EDGE_CHECK_GT(r, 0.0);
    if (errors_km.empty()) {
      out.push_back(0.0);
      continue;
    }
    size_t hits = 0;
    for (double e : errors_km) {
      if (e <= r) ++hits;
    }
    out.push_back(static_cast<double>(hits) / static_cast<double>(errors_km.size()));
  }
  return out;
}

}  // namespace edge::eval
