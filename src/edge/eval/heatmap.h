#ifndef EDGE_EVAL_HEATMAP_H_
#define EDGE_EVAL_HEATMAP_H_

#include <string>
#include <vector>

#include "edge/geo/latlon.h"

namespace edge::eval {

/// Renders an ASCII density map of points over a bounding box (north at the
/// top), used by the Fig. 1 / 8 / 9 event-dynamics reproductions: darker
/// characters mean more predicted tweets in the cell.
std::string AsciiHeatmap(const std::vector<geo::LatLon>& points,
                         const geo::BoundingBox& box, size_t nx, size_t ny);

/// The top-k densest cells as "(lat, lon) count" lines — the machine-checkable
/// companion to the ASCII art.
std::string TopCells(const std::vector<geo::LatLon>& points, const geo::BoundingBox& box,
                     size_t nx, size_t ny, size_t k);

}  // namespace edge::eval

#endif  // EDGE_EVAL_HEATMAP_H_
