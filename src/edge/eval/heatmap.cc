#include "edge/eval/heatmap.h"

#include <algorithm>

#include "edge/common/string_util.h"
#include "edge/geo/grid.h"

namespace edge::eval {

namespace {

std::vector<double> CellCounts(const std::vector<geo::LatLon>& points,
                               const geo::GeoGrid& grid) {
  std::vector<double> counts(grid.num_cells(), 0.0);
  for (const geo::LatLon& p : points) counts[grid.CellOf(p)] += 1.0;
  return counts;
}

}  // namespace

std::string AsciiHeatmap(const std::vector<geo::LatLon>& points,
                         const geo::BoundingBox& box, size_t nx, size_t ny) {
  static const char kShades[] = " .:-=+*#%@";
  geo::GeoGrid grid(box, nx, ny);
  std::vector<double> counts = CellCounts(points, grid);
  double max_count = *std::max_element(counts.begin(), counts.end());
  std::string out;
  out.reserve((nx + 3) * ny);
  for (size_t row = ny; row-- > 0;) {  // North (max lat) first.
    out += '|';
    for (size_t col = 0; col < nx; ++col) {
      double c = counts[grid.CellAt(col, row)];
      size_t shade = 0;
      if (max_count > 0.0 && c > 0.0) {
        shade = 1 + static_cast<size_t>((c / max_count) * 8.999);
      }
      out += kShades[std::min<size_t>(shade, 9)];
    }
    out += "|\n";
  }
  return out;
}

std::string TopCells(const std::vector<geo::LatLon>& points, const geo::BoundingBox& box,
                     size_t nx, size_t ny, size_t k) {
  geo::GeoGrid grid(box, nx, ny);
  std::vector<double> counts = CellCounts(points, grid);
  std::vector<size_t> order(counts.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&counts](size_t a, size_t b) { return counts[a] > counts[b]; });
  std::string out;
  for (size_t i = 0; i < std::min(k, order.size()); ++i) {
    if (counts[order[i]] == 0.0) break;
    geo::LatLon center = grid.CellCenter(order[i]);
    out += "(" + FormatDouble(center.lat, 4) + ", " + FormatDouble(center.lon, 4) +
           ")  " + FormatDouble(counts[order[i]], 0) + "\n";
  }
  return out;
}

}  // namespace edge::eval
