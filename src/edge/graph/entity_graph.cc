#include "edge/graph/entity_graph.h"

#include <algorithm>
#include <cmath>

#include "edge/common/check.h"

namespace edge::graph {

EntityGraph EntityGraph::Build(
    const std::vector<std::vector<std::string>>& tweet_entities) {
  EntityGraph g;
  auto intern = [&g](const std::string& name) {
    auto [it, inserted] = g.index_.try_emplace(name, g.names_.size());
    if (inserted) {
      g.names_.push_back(name);
      g.adjacency_.emplace_back();
    }
    return it->second;
  };
  for (const auto& entities : tweet_entities) {
    std::vector<size_t> ids;
    ids.reserve(entities.size());
    for (const auto& name : entities) {
      size_t id = intern(name);
      // An entity mentioned several times in one tweet counts once (§III-A2).
      if (std::find(ids.begin(), ids.end(), id) == ids.end()) ids.push_back(id);
    }
    for (size_t i = 0; i < ids.size(); ++i) {
      for (size_t j = i + 1; j < ids.size(); ++j) {
        auto [it, inserted] = g.adjacency_[ids[i]].try_emplace(ids[j], 0.0);
        it->second += 1.0;
        g.adjacency_[ids[j]][ids[i]] += 1.0;
        if (inserted) g.num_edges_ += 1;
      }
    }
  }
  return g;
}

EntityGraph EntityGraph::FromParts(std::vector<std::string> names,
                                   const std::vector<WeightedEdge>& edges) {
  EntityGraph g;
  g.names_ = std::move(names);
  g.adjacency_.resize(g.names_.size());
  for (size_t i = 0; i < g.names_.size(); ++i) {
    EDGE_CHECK(!g.names_[i].empty()) << "empty node name";
    auto [it, inserted] = g.index_.try_emplace(g.names_[i], i);
    EDGE_CHECK(inserted) << "duplicate node name: " << g.names_[i];
  }
  for (const WeightedEdge& e : edges) {
    EDGE_CHECK_LT(e.a, e.b);
    EDGE_CHECK_LT(e.b, g.names_.size());
    EDGE_CHECK(std::isfinite(e.weight) && e.weight > 0.0)
        << "edge weight must be finite and > 0";
    auto [it, inserted] = g.adjacency_[e.a].try_emplace(e.b, e.weight);
    EDGE_CHECK(inserted) << "duplicate edge " << e.a << "-" << e.b;
    g.adjacency_[e.b][e.a] = e.weight;
    g.num_edges_ += 1;
  }
  return g;
}

size_t EntityGraph::NodeId(std::string_view name) const {
  auto it = index_.find(std::string(name));
  return it == index_.end() ? kNotFound : it->second;
}

const std::string& EntityGraph::NodeName(size_t id) const {
  EDGE_CHECK_LT(id, names_.size());
  return names_[id];
}

double EntityGraph::EdgeWeight(size_t a, size_t b) const {
  EDGE_CHECK_LT(a, adjacency_.size());
  EDGE_CHECK_LT(b, adjacency_.size());
  auto it = adjacency_[a].find(b);
  return it == adjacency_[a].end() ? 0.0 : it->second;
}

double EntityGraph::Degree(size_t id) const {
  EDGE_CHECK_LT(id, adjacency_.size());
  double total = 0.0;
  for (const auto& [nbr, w] : adjacency_[id]) total += w;
  return total;
}

const std::unordered_map<size_t, double>& EntityGraph::Neighbors(size_t id) const {
  EDGE_CHECK_LT(id, adjacency_.size());
  return adjacency_[id];
}

nn::CsrMatrix EntityGraph::NormalizedAdjacency() const {
  // Co-occurrence counts are heavy-tailed (hub topics like "quarantine"
  // co-occur with hundreds of entities); log-damping the weights before
  // normalization keeps hubs from washing out venue-specific signal during
  // diffusion. DESIGN.md section 4.
  size_t n = num_nodes();
  std::vector<double> degree(n, 1.0);  // Self loop contributes 1.
  for (size_t i = 0; i < n; ++i) {
    for (const auto& [j, w] : adjacency_[i]) degree[i] += std::log1p(w);
  }

  std::vector<nn::Triplet> triplets;
  triplets.reserve(2 * num_edges_ + n);
  for (size_t i = 0; i < n; ++i) {
    double di = 1.0 / std::sqrt(degree[i]);
    triplets.push_back({i, i, di * di});  // Self connection.
    for (const auto& [j, w] : adjacency_[i]) {
      triplets.push_back({i, j, std::log1p(w) * di / std::sqrt(degree[j])});
    }
  }
  return nn::CsrMatrix::FromTriplets(n, n, std::move(triplets));
}

}  // namespace edge::graph
