#ifndef EDGE_GRAPH_GCN_H_
#define EDGE_GRAPH_GCN_H_

#include <vector>

#include "edge/common/rng.h"
#include "edge/nn/autodiff.h"

namespace edge::graph {

/// One graph-convolution layer (Eq. 1): H' = sigma(S H W), where S is the
/// symmetric-normalized adjacency held by the caller and sigma is ReLU or
/// identity. Both the propagation S H (row-parallel CSR spmm) and the dense
/// H W run under the global thread budget (edge/common/thread_pool.h) with
/// bitwise-deterministic results at any thread count; the backward pass goes
/// through the same parallel kernels.
class GcnLayer {
 public:
  GcnLayer(size_t in_dim, size_t out_dim, bool apply_relu, Rng* rng);

  /// Forward pass on the shared tape; `s` must outlive the tape.
  nn::Var Forward(const nn::CsrMatrix* s, const nn::Var& h) const;

  nn::Var weight() const { return w_; }

 private:
  nn::Var w_;
  bool apply_relu_;
};

/// A stack of GCN layers diffusing entity embeddings over their n-hop
/// ego-nets (the paper uses two layers). `dims` are the layer widths
/// including input: {in, hidden..., out}; an empty stack (dims.size() == 1)
/// degenerates to the identity, which is exactly the NoGCN ablation.
///
/// ReLU is applied between layers but the final layer is linear: the paper's
/// text puts ReLU on every conv layer, but a ReLU-terminated embedding stack
/// has an absorbing all-dead state (H = 0 is a local optimum the whole model
/// cannot escape, observed at our CPU scale), and Kipf & Welling's reference
/// GCN likewise keeps the last layer linear. DESIGN.md §4 lists this as a
/// documented deviation.
class GcnStack {
 public:
  GcnStack(const std::vector<size_t>& dims, Rng* rng);

  /// Applies every layer in order.
  nn::Var Forward(const nn::CsrMatrix* s, const nn::Var& x) const;

  /// All trainable weights.
  std::vector<nn::Var> Params() const;

  size_t num_layers() const { return layers_.size(); }
  size_t output_dim() const { return output_dim_; }

 private:
  std::vector<GcnLayer> layers_;
  size_t output_dim_;
};

}  // namespace edge::graph

#endif  // EDGE_GRAPH_GCN_H_
