#include "edge/graph/gcn.h"

#include "edge/nn/init.h"
#include "edge/obs/metrics.h"
#include "edge/obs/trace.h"

namespace edge::graph {

GcnLayer::GcnLayer(size_t in_dim, size_t out_dim, bool apply_relu, Rng* rng)
    : w_(nn::Param(nn::XavierUniform(in_dim, out_dim, rng))), apply_relu_(apply_relu) {}

nn::Var GcnLayer::Forward(const nn::CsrMatrix* s, const nn::Var& h) const {
  // SpMm and MatMul dispatch to the row-parallel kernels; no extra threading
  // is needed here and nesting is safe (inner ParallelFor runs inline).
  nn::Var out = nn::MatMul(nn::SpMm(s, h), w_);
  return apply_relu_ ? nn::Relu(out) : out;
}

GcnStack::GcnStack(const std::vector<size_t>& dims, Rng* rng) {
  EDGE_CHECK_GE(dims.size(), 1u);
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    bool last = (i + 2 == dims.size());
    layers_.emplace_back(dims[i], dims[i + 1], /*apply_relu=*/!last, rng);
  }
  output_dim_ = dims.back();
}

nn::Var GcnStack::Forward(const nn::CsrMatrix* s, const nn::Var& x) const {
  // The diffusion step of Eq. 1 — the per-batch hot path worth a span of its
  // own in training traces.
  EDGE_TRACE_SPAN("edge.graph.gcn_forward");
  static obs::Counter* forwards =
      obs::Registry::Global().GetCounter("edge.graph.gcn_forwards");
  forwards->Increment();
  nn::Var h = x;
  for (const GcnLayer& layer : layers_) h = layer.Forward(s, h);
  return h;
}

std::vector<nn::Var> GcnStack::Params() const {
  std::vector<nn::Var> params;
  for (const GcnLayer& layer : layers_) params.push_back(layer.weight());
  return params;
}

}  // namespace edge::graph
