#ifndef EDGE_GRAPH_ENTITY_GRAPH_H_
#define EDGE_GRAPH_ENTITY_GRAPH_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "edge/nn/sparse.h"

namespace edge::graph {

/// Undirected weighted co-occurrence entity graph (§III-A2): one node per
/// named entity seen in the *training* tweets, an edge between two entities
/// whenever they appear in the same tweet, weighted by the number of
/// co-occurring tweets. Node attributes (entity2vec embeddings) live outside
/// the graph, keyed by node id.
class EntityGraph {
 public:
  static constexpr size_t kNotFound = static_cast<size_t>(-1);

  /// Builds the graph from per-tweet entity-name sets. Entities within one
  /// tweet are deduplicated by the NER; pairs are counted once per tweet.
  static EntityGraph Build(const std::vector<std::vector<std::string>>& tweet_entities);

  /// One undirected weighted edge for FromParts (a < b, weight > 0).
  struct WeightedEdge {
    size_t a = 0;
    size_t b = 0;
    double weight = 0.0;
  };

  /// Reassembles a graph from its serialized parts: node `i` is named
  /// `names[i]`, each edge is inserted symmetrically with its stored weight.
  /// This is the snapshot restore path — unlike Build(), it preserves
  /// arbitrary (fractional, decayed) co-occurrence weights. Preconditions
  /// (EDGE_CHECK): unique non-empty names, a < b < names.size(), finite
  /// weight > 0, no duplicate edges. Untrusted input must be validated by
  /// the caller first (see snapshot/system_snapshot.cc).
  static EntityGraph FromParts(std::vector<std::string> names,
                               const std::vector<WeightedEdge>& edges);

  size_t num_nodes() const { return names_.size(); }
  size_t num_edges() const { return num_edges_; }

  /// Node id for an entity name, or kNotFound.
  size_t NodeId(std::string_view name) const;

  /// Entity name of a node.
  const std::string& NodeName(size_t id) const;

  /// Co-occurrence count between two nodes (0 when not adjacent).
  double EdgeWeight(size_t a, size_t b) const;

  /// Weighted degree (sum of incident edge weights, no self loop).
  double Degree(size_t id) const;

  /// Neighbors of a node with weights.
  const std::unordered_map<size_t, double>& Neighbors(size_t id) const;

  /// Symmetric-normalized adjacency with self connections (Eq. 1):
  ///   S = D~^{-1/2} (A + I) D~^{-1/2},  D~_ii = sum_j (A + I)_ij.
  /// The paper writes D_ii = sum_j A_ij, but follows Kipf & Welling [14]
  /// whose renormalization trick includes the self loop in the degree; we
  /// implement the Kipf form (the usual reading, and the one that keeps the
  /// spectral radius <= 1).
  nn::CsrMatrix NormalizedAdjacency() const;

 private:
  std::unordered_map<std::string, size_t> index_;
  std::vector<std::string> names_;
  std::vector<std::unordered_map<size_t, double>> adjacency_;
  size_t num_edges_ = 0;
};

}  // namespace edge::graph

#endif  // EDGE_GRAPH_ENTITY_GRAPH_H_
