#ifndef EDGE_GEO_PROJECTION_H_
#define EDGE_GEO_PROJECTION_H_

#include "edge/geo/latlon.h"

namespace edge::geo {

/// A point in the local tangent plane, kilometres east (x) / north (y) of the
/// projection origin.
struct PlanePoint {
  double x = 0.0;
  double y = 0.0;
};

/// Wraps a longitude difference (or a longitude) into [-180, 180). In-range
/// values are returned unchanged (bitwise), so only antimeridian-straddling
/// deltas pay the fmod.
double WrapLonDelta(double delta_deg);

/// Equirectangular projection around a region centroid. EDGE's MDN works in
/// this km-scale plane rather than raw degrees: over a metropolitan area the
/// projection error is negligible (< 0.1% at 50 km), it is exactly
/// invertible, and it conditions the optimization (1 unit = 1 km on both
/// axes instead of a latitude-dependent anisotropy). DESIGN.md §4(3).
class LocalProjection {
 public:
  /// Creates a projection centred at `origin`. Near-polar origins are legal:
  /// the east-west scale is clamped away from zero (cos(lat) floored at
  /// 1e-3) so ToLatLon never divides by ~0, at the cost of distorted
  /// east-west distances within ~0.06 degrees of a pole.
  explicit LocalProjection(const LatLon& origin);

  /// Degrees -> local km plane. The lon delta is wrapped into [-180, 180),
  /// so a world centered near +-180 degrees projects antimeridian-straddling
  /// points locally instead of ~360 degrees away.
  PlanePoint ToPlane(const LatLon& p) const;

  /// Local km plane -> degrees; the returned lon is wrapped into [-180, 180).
  LatLon ToLatLon(const PlanePoint& p) const;

  const LatLon& origin() const { return origin_; }

  /// Euclidean km distance in the plane (close to haversine near the origin).
  static double DistanceKm(const PlanePoint& a, const PlanePoint& b);

 private:
  LatLon origin_;
  double km_per_deg_lat_;
  double km_per_deg_lon_;
};

}  // namespace edge::geo

#endif  // EDGE_GEO_PROJECTION_H_
