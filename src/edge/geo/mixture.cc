#include "edge/geo/mixture.h"

#include <cmath>

#include "edge/common/math_util.h"

namespace edge::geo {

GaussianMixture2d::GaussianMixture2d(std::vector<Gaussian2d> components,
                                     std::vector<double> weights) {
  EDGE_CHECK_EQ(components.size(), weights.size());
  EDGE_CHECK(!components.empty());
  double total = 0.0;
  for (double w : weights) {
    EDGE_CHECK(std::isfinite(w) && w >= 0.0)
        << "mixture weight must be finite and non-negative, got " << w;
    total += w;
  }
  EDGE_CHECK_GT(total, 0.0) << "at least one mixture weight must be positive";
  // An MDN softmax weight underflows to exactly 0.0 under extreme logits
  // (exp(-800) == 0.0); such components carry no probability mass, so they
  // are dropped rather than aborting, and the survivors renormalize. This
  // also keeps LogPdf free of log(0) terms.
  components_.reserve(components.size());
  weights_.reserve(weights.size());
  for (size_t m = 0; m < weights.size(); ++m) {
    if (weights[m] > 0.0) {
      components_.push_back(std::move(components[m]));
      weights_.push_back(weights[m] / total);
    }
  }
}

double GaussianMixture2d::LogPdf(const PlanePoint& p) const {
  std::vector<double> terms(components_.size());
  for (size_t m = 0; m < components_.size(); ++m) {
    terms[m] = std::log(weights_[m]) + components_[m].LogPdf(p);
  }
  return LogSumExp(terms);
}

double GaussianMixture2d::Pdf(const PlanePoint& p) const { return std::exp(LogPdf(p)); }

PlanePoint GaussianMixture2d::Sample(Rng* rng) const {
  EDGE_CHECK(rng != nullptr);
  size_t m = rng->Categorical(weights_);
  return components_[m].Sample(rng);
}

PlanePoint GaussianMixture2d::FindMode() const {
  constexpr int kMaxIterations = 200;
  constexpr double kToleranceKm = 1e-6;

  PlanePoint best = components_[0].mean();
  double best_log_pdf = LogPdf(best);

  for (size_t start = 0; start < components_.size(); ++start) {
    PlanePoint x = components_[start].mean();
    for (int it = 0; it < kMaxIterations; ++it) {
      // Responsibility-weighted precision blend (Gaussian mean-shift step):
      //   x' = (sum_m g_m P_m)^-1 (sum_m g_m P_m mu_m),  g_m = w_m N_m(x),
      // where P_m = Sigma_m^-1. Fixed points are stationary points of the
      // mixture density; iterating from each mean finds its local mode.
      double a11 = 0.0, a12 = 0.0, a22 = 0.0, b1 = 0.0, b2 = 0.0;
      for (size_t m = 0; m < components_.size(); ++m) {
        const Gaussian2d& g = components_[m];
        double gm = weights_[m] * g.Pdf(x);
        double sx = g.sigma_x();
        double sy = g.sigma_y();
        double rho = g.rho();
        double inv_det = 1.0 / (sx * sx * sy * sy * (1.0 - rho * rho));
        // Sigma^-1 entries.
        double p11 = sy * sy * inv_det;
        double p22 = sx * sx * inv_det;
        double p12 = -rho * sx * sy * inv_det;
        a11 += gm * p11;
        a12 += gm * p12;
        a22 += gm * p22;
        b1 += gm * (p11 * g.mean().x + p12 * g.mean().y);
        b2 += gm * (p12 * g.mean().x + p22 * g.mean().y);
      }
      double det = a11 * a22 - a12 * a12;
      if (!(det > 1e-300)) break;  // All responsibilities underflowed.
      PlanePoint next{(a22 * b1 - a12 * b2) / det, (a11 * b2 - a12 * b1) / det};
      double moved = LocalProjection::DistanceKm(x, next);
      x = next;
      if (moved < kToleranceKm) break;
    }
    double lp = LogPdf(x);
    if (lp > best_log_pdf) {
      best_log_pdf = lp;
      best = x;
    }
  }
  return best;
}

PlanePoint GaussianMixture2d::MeanPoint() const {
  PlanePoint p{0.0, 0.0};
  for (size_t m = 0; m < components_.size(); ++m) {
    p.x += weights_[m] * components_[m].mean().x;
    p.y += weights_[m] * components_[m].mean().y;
  }
  return p;
}

}  // namespace edge::geo
