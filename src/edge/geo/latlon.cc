#include "edge/geo/latlon.h"

#include <algorithm>
#include <cmath>

#include "edge/common/math_util.h"

namespace edge::geo {

namespace {
constexpr double kEarthRadiusKm = 6371.0088;
double DegToRad(double deg) { return deg * kPi / 180.0; }
}  // namespace

double HaversineKm(const LatLon& a, const LatLon& b) {
  double lat1 = DegToRad(a.lat);
  double lat2 = DegToRad(b.lat);
  double dlat = lat2 - lat1;
  double dlon = DegToRad(b.lon - a.lon);
  double s1 = std::sin(0.5 * dlat);
  double s2 = std::sin(0.5 * dlon);
  double h = s1 * s1 + std::cos(lat1) * std::cos(lat2) * s2 * s2;
  h = std::min(1.0, std::max(0.0, h));
  return 2.0 * kEarthRadiusKm * std::asin(std::sqrt(h));
}

LatLon BoundingBox::Clamp(const LatLon& p) const {
  return {std::min(std::max(p.lat, min_lat), max_lat),
          std::min(std::max(p.lon, min_lon), max_lon)};
}

}  // namespace edge::geo
