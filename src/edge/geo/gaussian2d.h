#ifndef EDGE_GEO_GAUSSIAN2D_H_
#define EDGE_GEO_GAUSSIAN2D_H_

#include <vector>

#include "edge/common/rng.h"
#include "edge/geo/projection.h"

namespace edge::geo {

/// Axes of a confidence ellipse for a bivariate Gaussian (Fig. 7 rendering):
/// semi-axis lengths along the covariance eigenvectors plus the rotation of
/// the major axis from the +x direction.
struct ConfidenceEllipse {
  PlanePoint center;
  double semi_major = 0.0;
  double semi_minor = 0.0;
  double angle_rad = 0.0;
};

/// Bivariate Gaussian with full covariance parameterized as in Eq. 5:
/// mean (mu_x, mu_y), standard deviations (sigma_x, sigma_y) and correlation
/// rho, i.e. Sigma = [[sx^2, rho sx sy], [rho sx sy, sy^2]].
class Gaussian2d {
 public:
  Gaussian2d() = default;

  /// Requires sigma_x > 0, sigma_y > 0, |rho| < 1.
  Gaussian2d(PlanePoint mean, double sigma_x, double sigma_y, double rho);

  /// Isotropic convenience constructor (rho = 0, equal sigmas).
  static Gaussian2d Isotropic(PlanePoint mean, double sigma);

  /// Maximum-likelihood fit to >= 2 points (rho clamped away from +-1).
  static Gaussian2d Fit(const std::vector<PlanePoint>& points);

  const PlanePoint& mean() const { return mean_; }
  double sigma_x() const { return sigma_x_; }
  double sigma_y() const { return sigma_y_; }
  double rho() const { return rho_; }

  double LogPdf(const PlanePoint& p) const;
  double Pdf(const PlanePoint& p) const;

  /// Draws one sample.
  PlanePoint Sample(Rng* rng) const;

  /// Mahalanobis squared distance (x-mu)^T Sigma^-1 (x-mu).
  double MahalanobisSq(const PlanePoint& p) const;

  /// Confidence ellipse containing probability mass `confidence` in (0, 1);
  /// Fig. 7 draws the 75% / 80% / 85% ellipses of each component.
  ConfidenceEllipse EllipseAt(double confidence) const;

 private:
  PlanePoint mean_;
  double sigma_x_ = 1.0;
  double sigma_y_ = 1.0;
  double rho_ = 0.0;
};

}  // namespace edge::geo

#endif  // EDGE_GEO_GAUSSIAN2D_H_
