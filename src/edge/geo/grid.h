#ifndef EDGE_GEO_GRID_H_
#define EDGE_GEO_GRID_H_

#include <cstddef>

#include "edge/geo/latlon.h"

namespace edge::geo {

/// Uniform discretization of a bounding box into nx x ny cells. The grid
/// baselines of Table III (NaiveBayes / Kullback-Leibler / LocKDE and the
/// kde2d variants) all classify tweets into cells of a 100 x 100 grid and
/// answer with the winning cell's centre.
class GeoGrid {
 public:
  /// `nx`/`ny` are the number of columns (longitude) / rows (latitude).
  GeoGrid(const BoundingBox& box, size_t nx, size_t ny);

  size_t num_cells() const { return nx_ * ny_; }
  size_t nx() const { return nx_; }
  size_t ny() const { return ny_; }
  const BoundingBox& box() const { return box_; }

  /// Cell index of a point (points outside the box clamp to the border cell).
  size_t CellOf(const LatLon& p) const;

  /// Centre coordinate of a cell.
  LatLon CellCenter(size_t cell) const;

  /// Column / row of a cell index.
  size_t CellCol(size_t cell) const { return cell % nx_; }
  size_t CellRow(size_t cell) const { return cell / nx_; }

  /// Cell index from (col, row).
  size_t CellAt(size_t col, size_t row) const;

  /// Cell edge lengths in degrees.
  double cell_width_deg() const { return (box_.max_lon - box_.min_lon) / nx_; }
  double cell_height_deg() const { return (box_.max_lat - box_.min_lat) / ny_; }

 private:
  BoundingBox box_;
  size_t nx_;
  size_t ny_;
};

}  // namespace edge::geo

#endif  // EDGE_GEO_GRID_H_
