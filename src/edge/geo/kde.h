#ifndef EDGE_GEO_KDE_H_
#define EDGE_GEO_KDE_H_

#include <cstddef>
#include <vector>

#include "edge/geo/projection.h"

namespace edge::geo {

/// Isotropic Gaussian kernel density estimator over points in the local km
/// plane. Each term in LocKDE gets one of these (with a per-term bandwidth
/// derived from the term's location indicativeness), and the kde2d grid
/// baselines use it to smooth per-cell counts.
class Kde2d {
 public:
  /// `bandwidth_km` > 0 is the kernel standard deviation.
  Kde2d(std::vector<PlanePoint> points, double bandwidth_km);

  /// Density at `p` (averages the kernels; integrates to 1 over the plane).
  double Density(const PlanePoint& p) const;

  /// Log density via log-sum-exp (stable far from the support).
  double LogDensity(const PlanePoint& p) const;

  size_t num_points() const { return points_.size(); }
  double bandwidth_km() const { return bandwidth_km_; }

  /// Scott/Silverman-style rule-of-thumb bandwidth for 2-D data:
  /// h = n^(-1/6) * sqrt((var_x + var_y) / 2), floored at `min_bandwidth`.
  static double RuleOfThumbBandwidth(const std::vector<PlanePoint>& points,
                                     double min_bandwidth_km);

 private:
  std::vector<PlanePoint> points_;
  double bandwidth_km_;
};

}  // namespace edge::geo

#endif  // EDGE_GEO_KDE_H_
