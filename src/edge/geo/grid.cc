#include "edge/geo/grid.h"

#include <algorithm>

#include "edge/common/check.h"

namespace edge::geo {

GeoGrid::GeoGrid(const BoundingBox& box, size_t nx, size_t ny)
    : box_(box), nx_(nx), ny_(ny) {
  EDGE_CHECK_GT(nx, 0u);
  EDGE_CHECK_GT(ny, 0u);
  EDGE_CHECK_LT(box.min_lat, box.max_lat);
  EDGE_CHECK_LT(box.min_lon, box.max_lon);
}

size_t GeoGrid::CellOf(const LatLon& p) const {
  double fx = (p.lon - box_.min_lon) / (box_.max_lon - box_.min_lon);
  double fy = (p.lat - box_.min_lat) / (box_.max_lat - box_.min_lat);
  size_t col = static_cast<size_t>(
      std::clamp(fx * static_cast<double>(nx_), 0.0, static_cast<double>(nx_ - 1)));
  size_t row = static_cast<size_t>(
      std::clamp(fy * static_cast<double>(ny_), 0.0, static_cast<double>(ny_ - 1)));
  return CellAt(col, row);
}

LatLon GeoGrid::CellCenter(size_t cell) const {
  EDGE_CHECK_LT(cell, num_cells());
  size_t col = CellCol(cell);
  size_t row = CellRow(cell);
  return {box_.min_lat + (static_cast<double>(row) + 0.5) * cell_height_deg(),
          box_.min_lon + (static_cast<double>(col) + 0.5) * cell_width_deg()};
}

size_t GeoGrid::CellAt(size_t col, size_t row) const {
  EDGE_CHECK_LT(col, nx_);
  EDGE_CHECK_LT(row, ny_);
  return row * nx_ + col;
}

}  // namespace edge::geo
