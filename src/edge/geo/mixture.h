#ifndef EDGE_GEO_MIXTURE_H_
#define EDGE_GEO_MIXTURE_H_

#include <vector>

#include "edge/geo/gaussian2d.h"

namespace edge::geo {

/// A weighted mixture of bivariate Gaussians — EDGE's prediction object
/// (Eq. 6). Weights are kept normalized.
class GaussianMixture2d {
 public:
  GaussianMixture2d() = default;

  /// `weights` must be finite and non-negative with at least one positive
  /// entry; sizes match. Zero-weight components (e.g. underflowed MDN softmax
  /// weights) are dropped and the remainder is normalized to sum to 1, so
  /// num_components() can be smaller than components.size().
  GaussianMixture2d(std::vector<Gaussian2d> components, std::vector<double> weights);

  size_t num_components() const { return components_.size(); }
  const Gaussian2d& component(size_t m) const { return components_[m]; }
  double weight(size_t m) const { return weights_[m]; }
  const std::vector<double>& weights() const { return weights_; }

  /// Mixture density at p (Eq. 6) / its log via log-sum-exp.
  double Pdf(const PlanePoint& p) const;
  double LogPdf(const PlanePoint& p) const;

  /// Draws a sample: categorical over weights, then the component.
  PlanePoint Sample(Rng* rng) const;

  /// Implements Eq. 14: the single-location conversion used for the
  /// distance-based metrics. Runs the Gaussian-mixture mean-shift fixed
  /// point x <- (sum_m gamma_m S_m^-1)^-1 (sum_m gamma_m S_m^-1 mu_m) from
  /// every component mean and returns the converged point of highest density.
  PlanePoint FindMode() const;

  /// Weighted mean of component means (a cheap point summary; used by tests
  /// and the NoMixture comparison).
  PlanePoint MeanPoint() const;

 private:
  std::vector<Gaussian2d> components_;
  std::vector<double> weights_;
};

}  // namespace edge::geo

#endif  // EDGE_GEO_MIXTURE_H_
