#include "edge/geo/projection.h"

#include <cmath>

#include "edge/common/check.h"
#include "edge/common/math_util.h"

namespace edge::geo {

namespace {
// Kilometres per degree of latitude on the mean-radius sphere.
constexpr double kKmPerDegLat = 111.19492664455873;  // 2 pi R / 360.
}  // namespace

LocalProjection::LocalProjection(const LatLon& origin) : origin_(origin) {
  km_per_deg_lat_ = kKmPerDegLat;
  km_per_deg_lon_ = kKmPerDegLat * std::cos(origin.lat * kPi / 180.0);
  EDGE_CHECK_GT(km_per_deg_lon_, 1e-6) << "projection origin too close to a pole";
}

PlanePoint LocalProjection::ToPlane(const LatLon& p) const {
  return {(p.lon - origin_.lon) * km_per_deg_lon_, (p.lat - origin_.lat) * km_per_deg_lat_};
}

LatLon LocalProjection::ToLatLon(const PlanePoint& p) const {
  return {origin_.lat + p.y / km_per_deg_lat_, origin_.lon + p.x / km_per_deg_lon_};
}

double LocalProjection::DistanceKm(const PlanePoint& a, const PlanePoint& b) {
  double dx = a.x - b.x;
  double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace edge::geo
