#include "edge/geo/projection.h"

#include <algorithm>
#include <cmath>

#include "edge/common/check.h"
#include "edge/common/math_util.h"

namespace edge::geo {

namespace {
// Kilometres per degree of latitude on the mean-radius sphere.
constexpr double kKmPerDegLat = 111.19492664455873;  // 2 pi R / 360.

// Floor on cos(origin latitude): an origin within ~0.06 degrees of a pole
// would otherwise collapse km_per_deg_lon toward 0 and make ToLatLon divide
// by ~0. The clamp keeps both directions finite (east-west distances degrade
// gracefully instead of blowing up; nobody geolocates tweets at the pole).
constexpr double kMinCosLat = 1e-3;
}  // namespace

double WrapLonDelta(double delta_deg) {
  // Fast path: in-range deltas pass through untouched, so mid-longitude
  // worlds keep their exact pre-wrap arithmetic bit for bit.
  if (delta_deg >= -180.0 && delta_deg < 180.0) return delta_deg;
  double wrapped = std::fmod(delta_deg + 180.0, 360.0);
  if (wrapped < 0.0) wrapped += 360.0;
  return wrapped - 180.0;
}

LocalProjection::LocalProjection(const LatLon& origin) : origin_(origin) {
  km_per_deg_lat_ = kKmPerDegLat;
  km_per_deg_lon_ =
      kKmPerDegLat * std::max(std::cos(origin.lat * kPi / 180.0), kMinCosLat);
}

PlanePoint LocalProjection::ToPlane(const LatLon& p) const {
  // The raw lon delta for a world centered near +-180 degrees can reach
  // +-360; wrapping keeps antimeridian-straddling points local instead of a
  // hemisphere away.
  return {WrapLonDelta(p.lon - origin_.lon) * km_per_deg_lon_,
          (p.lat - origin_.lat) * km_per_deg_lat_};
}

LatLon LocalProjection::ToLatLon(const PlanePoint& p) const {
  return {origin_.lat + p.y / km_per_deg_lat_,
          WrapLonDelta(origin_.lon + p.x / km_per_deg_lon_)};
}

double LocalProjection::DistanceKm(const PlanePoint& a, const PlanePoint& b) {
  double dx = a.x - b.x;
  double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace edge::geo
