#include "edge/geo/kde.h"

#include <cmath>

#include "edge/common/check.h"
#include "edge/common/math_util.h"

namespace edge::geo {

Kde2d::Kde2d(std::vector<PlanePoint> points, double bandwidth_km)
    : points_(std::move(points)), bandwidth_km_(bandwidth_km) {
  EDGE_CHECK(!points_.empty());
  EDGE_CHECK_GT(bandwidth_km, 0.0);
}

double Kde2d::Density(const PlanePoint& p) const {
  double inv_two_h_sq = 1.0 / (2.0 * bandwidth_km_ * bandwidth_km_);
  double norm = 1.0 / (2.0 * kPi * bandwidth_km_ * bandwidth_km_ *
                       static_cast<double>(points_.size()));
  double sum = 0.0;
  for (const PlanePoint& q : points_) {
    double dx = p.x - q.x;
    double dy = p.y - q.y;
    sum += std::exp(-(dx * dx + dy * dy) * inv_two_h_sq);
  }
  return norm * sum;
}

double Kde2d::LogDensity(const PlanePoint& p) const {
  double inv_two_h_sq = 1.0 / (2.0 * bandwidth_km_ * bandwidth_km_);
  std::vector<double> terms;
  terms.reserve(points_.size());
  for (const PlanePoint& q : points_) {
    double dx = p.x - q.x;
    double dy = p.y - q.y;
    terms.push_back(-(dx * dx + dy * dy) * inv_two_h_sq);
  }
  return LogSumExp(terms) - std::log(2.0 * kPi * bandwidth_km_ * bandwidth_km_ *
                                     static_cast<double>(points_.size()));
}

double Kde2d::RuleOfThumbBandwidth(const std::vector<PlanePoint>& points,
                                   double min_bandwidth_km) {
  EDGE_CHECK(!points.empty());
  EDGE_CHECK_GT(min_bandwidth_km, 0.0);
  if (points.size() < 2) return min_bandwidth_km;
  double mx = 0.0;
  double my = 0.0;
  for (const PlanePoint& p : points) {
    mx += p.x;
    my += p.y;
  }
  mx /= static_cast<double>(points.size());
  my /= static_cast<double>(points.size());
  double var = 0.0;
  for (const PlanePoint& p : points) {
    var += (p.x - mx) * (p.x - mx) + (p.y - my) * (p.y - my);
  }
  var /= 2.0 * static_cast<double>(points.size());
  double h = std::sqrt(var) * std::pow(static_cast<double>(points.size()), -1.0 / 6.0);
  return std::max(h, min_bandwidth_km);
}

}  // namespace edge::geo
