#include "edge/geo/gaussian2d.h"

#include <cmath>

#include "edge/common/math_util.h"

namespace edge::geo {

Gaussian2d::Gaussian2d(PlanePoint mean, double sigma_x, double sigma_y, double rho)
    : mean_(mean), sigma_x_(sigma_x), sigma_y_(sigma_y), rho_(rho) {
  EDGE_CHECK_GT(sigma_x, 0.0);
  EDGE_CHECK_GT(sigma_y, 0.0);
  EDGE_CHECK_LT(std::fabs(rho), 1.0);
}

Gaussian2d Gaussian2d::Isotropic(PlanePoint mean, double sigma) {
  return Gaussian2d(mean, sigma, sigma, 0.0);
}

Gaussian2d Gaussian2d::Fit(const std::vector<PlanePoint>& points) {
  EDGE_CHECK_GE(points.size(), 2u);
  double n = static_cast<double>(points.size());
  double mx = 0.0;
  double my = 0.0;
  for (const PlanePoint& p : points) {
    mx += p.x;
    my += p.y;
  }
  mx /= n;
  my /= n;
  double sxx = 0.0;
  double syy = 0.0;
  double sxy = 0.0;
  for (const PlanePoint& p : points) {
    sxx += (p.x - mx) * (p.x - mx);
    syy += (p.y - my) * (p.y - my);
    sxy += (p.x - mx) * (p.y - my);
  }
  sxx /= n;
  syy /= n;
  sxy /= n;
  // Degenerate clouds (collinear / identical points) get a small floor.
  constexpr double kMinVariance = 1e-6;
  double sx = std::sqrt(std::max(sxx, kMinVariance));
  double sy = std::sqrt(std::max(syy, kMinVariance));
  double rho = Clamp(sxy / (sx * sy), -0.99, 0.99);
  return Gaussian2d({mx, my}, sx, sy, rho);
}

double Gaussian2d::LogPdf(const PlanePoint& p) const {
  double one_minus = 1.0 - rho_ * rho_;
  double dx = (p.x - mean_.x) / sigma_x_;
  double dy = (p.y - mean_.y) / sigma_y_;
  double z = dx * dx - 2.0 * rho_ * dx * dy + dy * dy;
  return -std::log(2.0 * kPi) - std::log(sigma_x_) - std::log(sigma_y_) -
         0.5 * std::log(one_minus) - z / (2.0 * one_minus);
}

double Gaussian2d::Pdf(const PlanePoint& p) const { return std::exp(LogPdf(p)); }

PlanePoint Gaussian2d::Sample(Rng* rng) const {
  EDGE_CHECK(rng != nullptr);
  // Cholesky of [[sx^2, rho sx sy], [rho sx sy, sy^2]].
  double u = rng->Normal();
  double v = rng->Normal();
  double x = mean_.x + sigma_x_ * u;
  double y = mean_.y + sigma_y_ * (rho_ * u + std::sqrt(1.0 - rho_ * rho_) * v);
  return {x, y};
}

double Gaussian2d::MahalanobisSq(const PlanePoint& p) const {
  double one_minus = 1.0 - rho_ * rho_;
  double dx = (p.x - mean_.x) / sigma_x_;
  double dy = (p.y - mean_.y) / sigma_y_;
  return (dx * dx - 2.0 * rho_ * dx * dy + dy * dy) / one_minus;
}

ConfidenceEllipse Gaussian2d::EllipseAt(double confidence) const {
  EDGE_CHECK_GT(confidence, 0.0);
  EDGE_CHECK_LT(confidence, 1.0);
  // For a bivariate Gaussian, Mahalanobis^2 ~ chi-squared with 2 dof, whose
  // quantile has the closed form -2 ln(1 - confidence).
  double chi_sq = -2.0 * std::log(1.0 - confidence);
  // Eigen decomposition of the 2x2 covariance.
  double a = sigma_x_ * sigma_x_;
  double b = rho_ * sigma_x_ * sigma_y_;
  double c = sigma_y_ * sigma_y_;
  double trace_half = 0.5 * (a + c);
  double det = a * c - b * b;
  double disc = std::sqrt(std::max(trace_half * trace_half - det, 0.0));
  double lambda1 = trace_half + disc;  // Major.
  double lambda2 = trace_half - disc;  // Minor.
  ConfidenceEllipse e;
  e.center = mean_;
  e.semi_major = std::sqrt(std::max(lambda1, 0.0) * chi_sq);
  e.semi_minor = std::sqrt(std::max(lambda2, 0.0) * chi_sq);
  e.angle_rad = (b == 0.0 && a >= c) ? 0.0 : std::atan2(lambda1 - a, b);
  return e;
}

}  // namespace edge::geo
