#ifndef EDGE_GEO_LATLON_H_
#define EDGE_GEO_LATLON_H_

namespace edge::geo {

/// A WGS-84 geographic coordinate in degrees.
struct LatLon {
  double lat = 0.0;
  double lon = 0.0;
};

/// Great-circle distance in kilometres (haversine formula, mean Earth radius
/// 6371.0088 km). This is the distance behind every Mean/Median/@3km/@5km
/// metric in the evaluation.
double HaversineKm(const LatLon& a, const LatLon& b);

/// Axis-aligned lat/lon rectangle; the study regions (NYMA / LAMA) and the
/// baseline grids are defined by one of these.
struct BoundingBox {
  double min_lat = 0.0;
  double max_lat = 0.0;
  double min_lon = 0.0;
  double max_lon = 0.0;

  bool Contains(const LatLon& p) const {
    return p.lat >= min_lat && p.lat <= max_lat && p.lon >= min_lon && p.lon <= max_lon;
  }

  LatLon Center() const { return {0.5 * (min_lat + max_lat), 0.5 * (min_lon + max_lon)}; }

  /// Clamps a point into the box (used to keep synthetic samples in-region).
  LatLon Clamp(const LatLon& p) const;
};

}  // namespace edge::geo

#endif  // EDGE_GEO_LATLON_H_
