#ifndef EDGE_EMBEDDING_ENTITY2VEC_H_
#define EDGE_EMBEDDING_ENTITY2VEC_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "edge/common/rng.h"
#include "edge/nn/matrix.h"
#include "edge/text/vocabulary.h"

namespace edge::embedding {

/// Hyper-parameters of the skip-gram/negative-sampling trainer. The paper's
/// default embedding length is 400 on GPU-scale corpora; our bench default is
/// 64 (Fig. 6 sweeps it), everything is configurable.
struct Entity2VecOptions {
  size_t dim = 64;
  size_t window = 5;
  size_t negatives = 5;
  double learning_rate = 0.025;
  double min_learning_rate = 1e-4;
  int epochs = 3;
  /// Frequent-token subsampling threshold (word2vec's `-sample`); 0 disables.
  double subsample_threshold = 1e-3;
  /// Tokens rarer than this are dropped from training and the vocabulary.
  int64_t min_count = 1;
  uint64_t seed = 42;
  /// Worker threads for Train(): 0 = hardware concurrency, 1 = serial. More
  /// than one thread only takes effect when `deterministic` is false.
  int num_threads = 1;
  /// When true (default), Train() follows the exact legacy single-threaded
  /// schedule regardless of num_threads, so embeddings are bitwise
  /// reproducible. When false with num_threads > 1, sentences are split into
  /// contiguous shards trained concurrently Hogwild-style (word2vec's
  /// lock-free scheme): workers race benignly on the shared embedding
  /// matrices, so results depend on thread interleaving and are NOT
  /// reproducible run-to-run — documented in DESIGN.md "Parallelism model".
  bool deterministic = true;
};

/// entity2vec (§III-A1): word2vec skip-gram with negative sampling, trained
/// on tweets whose named entities were pre-joined into single tokens (by the
/// NER spans and the PhraseDetector), so each entity gets one embedding that
/// captures entity-level — not word-level — semantics. Implemented from
/// scratch; negative samples come from the unigram^0.75 distribution.
class Entity2Vec {
 public:
  explicit Entity2Vec(Entity2VecOptions options = {});

  /// Trains embeddings on the tokenized corpus. Call once.
  void Train(const std::vector<std::vector<std::string>>& corpus);

  /// Vocabulary after min-count filtering; row i of embeddings() is
  /// vocab().TokenOf(i).
  const text::Vocabulary& vocab() const { return vocab_; }

  /// |V| x dim input-embedding matrix (the representation fed to the GCN).
  const nn::Matrix& embeddings() const { return input_; }

  /// Embedding row for a token; empty vector when out-of-vocabulary.
  std::vector<double> EmbeddingOf(const std::string& token) const;

  /// Cosine similarity of two in-vocabulary tokens.
  double CosineSimilarity(const std::string& a, const std::string& b) const;

  /// Top-k most similar in-vocabulary tokens by cosine.
  std::vector<std::pair<std::string, double>> MostSimilar(const std::string& token,
                                                          size_t k) const;

  const Entity2VecOptions& options() const { return options_; }

 private:
  size_t SampleNegative(Rng* rng) const;
  /// `u_grad` is caller-owned scratch of length dim (hoisted out of the pair
  /// loop so the inner trainer never allocates); overwritten on entry.
  void TrainPair(size_t center, size_t context, double lr, Rng* rng,
                 std::vector<double>* u_grad);
  /// Runs the epoch loop over the contiguous sentence block [begin, end) of
  /// `id_corpus`, decaying the learning rate against `planned_tokens` (the
  /// block's token count times epochs). The serial path trains the whole
  /// corpus as one block; Hogwild workers each train one block.
  void TrainRange(const std::vector<std::vector<size_t>>& id_corpus, size_t begin,
                  size_t end, int64_t planned_tokens, Rng* rng);

  Entity2VecOptions options_;
  text::Vocabulary vocab_;
  nn::Matrix input_;    // "u" vectors.
  nn::Matrix output_;   // "v" context vectors.
  std::vector<double> negative_cdf_;  // Cumulative unigram^0.75.
  bool trained_ = false;
};

}  // namespace edge::embedding

#endif  // EDGE_EMBEDDING_ENTITY2VEC_H_
