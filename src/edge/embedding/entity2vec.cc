#include "edge/embedding/entity2vec.h"

#include <algorithm>
#include <cmath>
#include <thread>
#include <unordered_map>

#include "edge/common/math_util.h"
#include "edge/common/stopwatch.h"
#include "edge/obs/log.h"
#include "edge/obs/metrics.h"
#include "edge/obs/trace.h"

namespace edge::embedding {

Entity2Vec::Entity2Vec(Entity2VecOptions options) : options_(options) {
  EDGE_CHECK_GT(options_.dim, 0u);
  EDGE_CHECK_GT(options_.learning_rate, 0.0);
  EDGE_CHECK_GE(options_.epochs, 1);
}

void Entity2Vec::Train(const std::vector<std::vector<std::string>>& corpus) {
  EDGE_CHECK(!trained_) << "Train() may only be called once";
  trained_ = true;
  EDGE_TRACE_SPAN("edge.embedding.entity2vec.train");
  Stopwatch watch;

  // Pass 1: raw counts for min-count filtering.
  std::unordered_map<std::string, int64_t> raw_counts;
  for (const auto& sentence : corpus) {
    for (const auto& token : sentence) raw_counts[token] += 1;
  }
  // Build the filtered vocabulary (Add() also records counts).
  for (const auto& sentence : corpus) {
    for (const auto& token : sentence) {
      if (raw_counts[token] >= options_.min_count) vocab_.Add(token);
    }
  }
  if (vocab_.size() == 0) return;  // Nothing frequent enough to train on.

  Rng rng(options_.seed);
  double init_scale = 0.5 / static_cast<double>(options_.dim);
  input_ = nn::Matrix(vocab_.size(), options_.dim);
  output_ = nn::Matrix(vocab_.size(), options_.dim);
  for (size_t r = 0; r < vocab_.size(); ++r) {
    for (size_t c = 0; c < options_.dim; ++c) {
      input_.At(r, c) = rng.Uniform(-init_scale, init_scale);
    }
  }

  // Negative-sampling CDF over unigram^0.75 (word2vec's noise distribution).
  negative_cdf_.resize(vocab_.size());
  double cumulative = 0.0;
  for (size_t i = 0; i < vocab_.size(); ++i) {
    cumulative += std::pow(static_cast<double>(vocab_.CountOf(i)), 0.75);
    negative_cdf_[i] = cumulative;
  }

  // Convert the corpus to id sequences once.
  std::vector<std::vector<size_t>> id_corpus;
  id_corpus.reserve(corpus.size());
  int64_t total_tokens = 0;
  for (const auto& sentence : corpus) {
    std::vector<size_t> ids;
    ids.reserve(sentence.size());
    for (const auto& token : sentence) {
      size_t id = vocab_.Lookup(token);
      if (id != text::Vocabulary::kNotFound) ids.push_back(id);
    }
    total_tokens += static_cast<int64_t>(ids.size());
    id_corpus.push_back(std::move(ids));
  }
  if (total_tokens == 0) return;

  obs::Registry& registry = obs::Registry::Global();
  registry.GetGauge("edge.embedding.entity2vec.vocab_size")
      ->Set(static_cast<double>(vocab_.size()));
  registry.GetCounter("edge.embedding.entity2vec.corpus_tokens")
      ->Increment(total_tokens);
  auto log_done = [&](int worker_count) {
    double seconds = watch.ElapsedSeconds();
    registry.GetHistogram("edge.embedding.entity2vec.train_seconds")
        ->Observe(seconds);
    EDGE_LOG(INFO) << "entity2vec trained" << obs::Kv("vocab", vocab_.size())
                   << obs::Kv("tokens", total_tokens)
                   << obs::Kv("epochs", options_.epochs)
                   << obs::Kv("threads", worker_count) << obs::Kv("sec", seconds);
  };

  int requested = options_.num_threads;
  unsigned hw = std::thread::hardware_concurrency();
  int threads = requested <= 0 ? static_cast<int>(hw == 0 ? 1 : hw) : requested;
  if (options_.deterministic || threads <= 1) {
    // Exact legacy schedule: one block, the same Rng stream that produced the
    // init above — bitwise identical to the pre-parallel implementation for
    // every num_threads value (the determinism switch wins over the budget).
    TrainRange(id_corpus, 0, id_corpus.size(), total_tokens, &rng);
    log_done(1);
    return;
  }

  // Hogwild mode: contiguous sentence shards, one worker and one private RNG
  // stream per shard. Workers update input_/output_ lock-free; conflicting
  // writes are rare (touched rows are the pair's center/context/negatives)
  // and benign, as in word2vec's reference trainer. Results depend on the OS
  // interleaving, hence the opt-in via deterministic = false.
  size_t shards = std::min<size_t>(static_cast<size_t>(threads), id_corpus.size());
  std::vector<std::thread> workers;
  workers.reserve(shards);
  size_t base = id_corpus.size() / shards;
  size_t extra = id_corpus.size() % shards;
  size_t begin = 0;
  for (size_t s = 0; s < shards; ++s) {
    size_t end = begin + base + (s < extra ? 1 : 0);
    int64_t shard_tokens = 0;
    for (size_t i = begin; i < end; ++i) {
      shard_tokens += static_cast<int64_t>(id_corpus[i].size());
    }
    uint64_t shard_seed = options_.seed ^ (0x9e3779b97f4a7c15ULL * (s + 1));
    workers.emplace_back([this, &id_corpus, begin, end, shard_tokens, shard_seed] {
      Rng shard_rng(shard_seed);
      TrainRange(id_corpus, begin, end, shard_tokens, &shard_rng);
    });
    begin = end;
  }
  for (std::thread& worker : workers) worker.join();
  log_done(static_cast<int>(shards));
}

void Entity2Vec::TrainRange(const std::vector<std::vector<size_t>>& id_corpus,
                            size_t begin, size_t end, int64_t block_tokens, Rng* rng) {
  int64_t planned = block_tokens * options_.epochs;
  if (planned <= 0) return;
  int64_t processed = 0;
  // Scratch reused across every sentence and pair in this block; TrainPair
  // and the subsampling filter never touch the heap in steady state.
  std::vector<double> u_grad(options_.dim, 0.0);
  std::vector<size_t> kept;
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    for (size_t sentence = begin; sentence < end; ++sentence) {
      const std::vector<size_t>& ids = id_corpus[sentence];
      // Frequent-token subsampling (applied per epoch so rare entities keep
      // all their contexts).
      kept.clear();
      kept.reserve(ids.size());
      for (size_t id : ids) {
        processed += 1;
        if (options_.subsample_threshold > 0.0) {
          double freq = static_cast<double>(vocab_.CountOf(id)) /
                        static_cast<double>(vocab_.total_count());
          double keep_p =
              std::sqrt(options_.subsample_threshold / freq) +
              options_.subsample_threshold / freq;
          if (keep_p < 1.0 && rng->Uniform() >= keep_p) continue;
        }
        kept.push_back(id);
      }
      double progress = static_cast<double>(processed) / static_cast<double>(planned);
      double lr = std::max(options_.min_learning_rate,
                           options_.learning_rate * (1.0 - progress));
      for (size_t pos = 0; pos < kept.size(); ++pos) {
        // Dynamic window, as in word2vec.
        size_t span = 1 + rng->UniformInt(options_.window);
        size_t lo = pos >= span ? pos - span : 0;
        size_t hi = std::min(kept.size(), pos + span + 1);
        for (size_t ctx = lo; ctx < hi; ++ctx) {
          if (ctx == pos) continue;
          TrainPair(kept[pos], kept[ctx], lr, rng, &u_grad);
        }
      }
    }
  }
}

size_t Entity2Vec::SampleNegative(Rng* rng) const {
  double target = rng->Uniform() * negative_cdf_.back();
  auto it = std::lower_bound(negative_cdf_.begin(), negative_cdf_.end(), target);
  return static_cast<size_t>(it - negative_cdf_.begin());
}

void Entity2Vec::TrainPair(size_t center, size_t context, double lr, Rng* rng,
                           std::vector<double>* u_grad) {
  const size_t dim = options_.dim;
  double* EDGE_RESTRICT u = input_.row_data(center);
  double* EDGE_RESTRICT grad = u_grad->data();
  std::fill(grad, grad + dim, 0.0);

  // u lives in input_, v in output_ and grad in caller scratch, so the three
  // restrict-qualified pointers never alias and both loops vectorize cleanly.
  auto update = [&](size_t target, double label) {
    double* EDGE_RESTRICT v = output_.row_data(target);
    double z = 0.0;
    for (size_t d = 0; d < dim; ++d) z += u[d] * v[d];
    double g = (Sigmoid(z) - label) * lr;
    for (size_t d = 0; d < dim; ++d) {
      grad[d] += g * v[d];
      v[d] -= g * u[d];
    }
  };

  update(context, 1.0);
  for (size_t n = 0; n < options_.negatives; ++n) {
    size_t neg = SampleNegative(rng);
    if (neg == context) continue;
    update(neg, 0.0);
  }
  for (size_t d = 0; d < dim; ++d) u[d] -= grad[d];
}

std::vector<double> Entity2Vec::EmbeddingOf(const std::string& token) const {
  size_t id = vocab_.Lookup(token);
  if (id == text::Vocabulary::kNotFound) return {};
  return std::vector<double>(input_.row_data(id), input_.row_data(id) + options_.dim);
}

double Entity2Vec::CosineSimilarity(const std::string& a, const std::string& b) const {
  size_t ia = vocab_.Lookup(a);
  size_t ib = vocab_.Lookup(b);
  EDGE_CHECK(ia != text::Vocabulary::kNotFound) << "unknown token" << a;
  EDGE_CHECK(ib != text::Vocabulary::kNotFound) << "unknown token" << b;
  const double* va = input_.row_data(ia);
  const double* vb = input_.row_data(ib);
  double dot = 0.0;
  double na = 0.0;
  double nb = 0.0;
  for (size_t d = 0; d < options_.dim; ++d) {
    dot += va[d] * vb[d];
    na += va[d] * va[d];
    nb += vb[d] * vb[d];
  }
  double denom = std::sqrt(na) * std::sqrt(nb);
  return denom > 0.0 ? dot / denom : 0.0;
}

std::vector<std::pair<std::string, double>> Entity2Vec::MostSimilar(
    const std::string& token, size_t k) const {
  size_t id = vocab_.Lookup(token);
  EDGE_CHECK(id != text::Vocabulary::kNotFound) << "unknown token" << token;
  std::vector<std::pair<std::string, double>> scored;
  for (size_t other = 0; other < vocab_.size(); ++other) {
    if (other == id) continue;
    scored.emplace_back(vocab_.TokenOf(other),
                        CosineSimilarity(token, vocab_.TokenOf(other)));
  }
  std::sort(scored.begin(), scored.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  if (scored.size() > k) scored.resize(k);
  return scored;
}

}  // namespace edge::embedding
