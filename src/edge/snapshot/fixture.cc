#include "edge/snapshot/fixture.h"

#include <cstdlib>
#include <utility>

#include "edge/data/generator.h"

namespace edge::snapshot {

DemoSnapshotOptions::DemoSnapshotOptions() {
  // Mirrors the integration tests' TinyWorld/TinyConfig scale.
  preset.num_fine_pois = 30;
  preset.num_coarse_areas = 4;
  preset.num_chains = 4;
  preset.num_topics = 16;

  config.auto_dim = false;
  config.embedding_dim = 32;
  config.gcn_hidden = {32, 32};
  config.epochs = 40;
  config.entity2vec.epochs = 25;

  serve.max_batch = 8;
  serve.max_delay_ms = 1.0;
  serve.num_workers = 2;
  // Small on purpose: a 100x spike event must overflow it so shedding shows
  // up in the canonical stream.
  serve.queue_capacity = 64;
  serve.cache_capacity = 256;
  serve.default_deadline_ms = 0.0;
  serve.predict_threads = 1;
}

DemoSnapshotOptions FastDemoSnapshotOptions() {
  DemoSnapshotOptions options;
  options.tweets = 700;
  options.config.epochs = 8;
  options.config.entity2vec.epochs = 6;
  return options;
}

bool ScenarioFastModeEnabled() {
  const char* value = std::getenv("EDGE_SCENARIO_FAST");
  return value != nullptr && value[0] != '\0' &&
         !(value[0] == '0' && value[1] == '\0');
}

Result<data::WorldConfig> MakeWorldByName(const std::string& name,
                                          const data::WorldPresetOptions& preset) {
  if (name == "nyma") return data::MakeNymaWorld(preset);
  if (name == "ny2020") return data::MakeNy2020World(preset);
  if (name == "lama") return data::MakeLamaWorld(preset);
  return Status::InvalidArgument("unknown world preset: " + name +
                                 " (expected nyma, ny2020 or lama)");
}

Result<DemoArtifacts> BuildDemoArtifacts(const DemoSnapshotOptions& options) {
  Result<data::WorldConfig> world = MakeWorldByName(options.world, options.preset);
  if (!world.ok()) return world.status();

  DemoArtifacts artifacts;
  data::TweetGenerator generator(world.value());
  data::Dataset raw = generator.Generate(options.tweets);
  data::Pipeline pipeline(generator.BuildGazetteer());
  artifacts.dataset = pipeline.Process(raw);

  artifacts.model = std::make_unique<core::EdgeModel>(options.config);
  artifacts.model->Fit(artifacts.dataset);

  Result<SystemSnapshot> snapshot = CaptureSystemSnapshot(
      *artifacts.model, world.value(), artifacts.dataset, options.serve);
  if (!snapshot.ok()) return snapshot.status();
  artifacts.snapshot = std::move(snapshot).value();
  return artifacts;
}

Result<SystemSnapshot> BuildDemoSnapshot(const DemoSnapshotOptions& options) {
  Result<DemoArtifacts> artifacts = BuildDemoArtifacts(options);
  if (!artifacts.ok()) return artifacts.status();
  return std::move(artifacts).value().snapshot;
}

}  // namespace edge::snapshot
