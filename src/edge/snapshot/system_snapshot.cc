#include "edge/snapshot/system_snapshot.h"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "edge/common/file_util.h"
#include "edge/common/hash.h"
#include "edge/core/model_store.h"

namespace edge::snapshot {

namespace {

/// Plausibility caps for counts a corrupt-but-checksum-valid section could
/// still claim; reject before they size an allocation.
constexpr size_t kMaxPois = size_t{1} << 20;
constexpr size_t kMaxTopics = size_t{1} << 20;
constexpr size_t kMaxBranches = size_t{1} << 12;
constexpr size_t kMaxAliases = size_t{1} << 12;
constexpr size_t kMaxPhases = size_t{1} << 12;
constexpr size_t kMaxAffinity = size_t{1} << 20;
constexpr size_t kMaxWords = size_t{1} << 20;
constexpr size_t kMaxVocab = size_t{1} << 24;
constexpr size_t kMaxNodes = size_t{1} << 24;
constexpr size_t kMaxEdges = size_t{1} << 26;
constexpr size_t kMaxSectionBytes = size_t{1} << 30;
constexpr int kNumEntityCategories = 10;  // kPerson .. kOther in text/ner.h.

/// Sequential reader over the lines of a section payload. Sections are
/// line-oriented so names containing spaces round-trip unambiguously.
class LineReader {
 public:
  explicit LineReader(const std::string& content) {
    size_t begin = 0;
    while (begin <= content.size()) {
      size_t end = content.find('\n', begin);
      if (end == std::string::npos) {
        if (begin < content.size()) lines_.push_back(content.substr(begin));
        break;
      }
      lines_.push_back(content.substr(begin, end - begin));
      begin = end + 1;
    }
  }

  bool Next(std::string* line) {
    if (next_ >= lines_.size()) return false;
    *line = lines_[next_++];
    return true;
  }

  size_t line_number() const { return next_; }

 private:
  std::vector<std::string> lines_;
  size_t next_ = 0;
};

Status TruncatedError(const char* section, const LineReader& reader) {
  return Status::InvalidArgument(std::string("truncated ") + section +
                                 " section at line " +
                                 std::to_string(reader.line_number()));
}

/// Parses `line` as `<tag> <v0> <v1> ...` with exactly `values.size()`
/// numeric fields and no trailing garbage.
Status ParseTaggedDoubles(const std::string& line, const char* tag,
                          std::vector<double*> values) {
  std::istringstream is(line);
  std::string got;
  is >> got;
  if (is.fail() || got != tag) {
    return Status::InvalidArgument(std::string("expected '") + tag + "' line, got '" +
                                   got + "'");
  }
  for (double* v : values) {
    is >> *v;
    if (is.fail()) {
      return Status::InvalidArgument(std::string("truncated '") + tag + "' line");
    }
    if (!std::isfinite(*v)) {
      return Status::InvalidArgument(std::string("non-finite value on '") + tag +
                                     "' line");
    }
  }
  std::string rest;
  is >> rest;
  if (!rest.empty()) {
    return Status::InvalidArgument(std::string("trailing garbage on '") + tag +
                                   "' line");
  }
  return Status::Ok();
}

Status ParseTaggedCount(const std::string& line, const char* tag, size_t cap,
                        size_t* out) {
  std::istringstream is(line);
  std::string got;
  long long n = -1;
  is >> got >> n;
  std::string rest;
  is >> rest;
  if (is.fail() && rest.empty() && got == tag) {
    // `is >> rest` on an exhausted stream sets fail; distinguish from a
    // failed count read by checking n directly below.
  }
  if (got != tag || n < 0) {
    return Status::InvalidArgument(std::string("bad '") + tag + "' count line");
  }
  if (!rest.empty()) {
    return Status::InvalidArgument(std::string("trailing garbage on '") + tag +
                                   "' line");
  }
  if (static_cast<size_t>(n) > cap) {
    return Status::InvalidArgument(std::string("implausible '") + tag + "' count");
  }
  *out = static_cast<size_t>(n);
  return Status::Ok();
}

bool ValidLat(double lat) { return std::isfinite(lat) && lat >= -90.0 && lat <= 90.0; }
bool ValidLon(double lon) { return std::isfinite(lon) && lon >= -360.0 && lon <= 360.0; }

bool LineSafe(const std::string& s) {
  return s.find('\n') == std::string::npos && s.find('\r') == std::string::npos;
}

Status ParseCategory(long long raw, text::EntityCategory* out) {
  if (raw < 0 || raw >= kNumEntityCategories) {
    return Status::InvalidArgument("entity category out of range");
  }
  *out = static_cast<text::EntityCategory>(raw);
  return Status::Ok();
}

/// Every invariant TweetGenerator's constructor enforces with EDGE_CHECK,
/// re-stated as Status errors: a world section that parses must never abort
/// downstream construction.
Status ValidateWorld(const data::WorldConfig& world) {
  if (world.pois.empty()) return Status::InvalidArgument("world has no POIs");
  if (world.background_words.empty()) {
    return Status::InvalidArgument("world has no background words");
  }
  if (!(world.timeline_days > 0.0) || !std::isfinite(world.timeline_days)) {
    return Status::InvalidArgument("timeline_days must be finite and > 0");
  }
  const geo::BoundingBox& r = world.region;
  if (!ValidLat(r.min_lat) || !ValidLat(r.max_lat) || !ValidLon(r.min_lon) ||
      !ValidLon(r.max_lon) || r.min_lat >= r.max_lat || r.min_lon >= r.max_lon) {
    return Status::InvalidArgument("bad world region");
  }
  auto valid_prob = [](double p) { return std::isfinite(p) && p >= 0.0 && p <= 1.0; };
  if (!std::isfinite(world.no_topic_rate) || world.no_topic_rate < 0.0 ||
      !valid_prob(world.p_mention_poi) || !valid_prob(world.p_alias_mention) ||
      !valid_prob(world.p_mention_topic) || !valid_prob(world.p_second_poi) ||
      !valid_prob(world.p_coarse_area) || !valid_prob(world.p_no_entity)) {
    return Status::InvalidArgument("bad world sampling rates");
  }
  for (const data::PoiSpec& poi : world.pois) {
    if (poi.name.empty()) return Status::InvalidArgument("POI with empty name");
    if (poi.branches.empty()) {
      return Status::InvalidArgument("POI without branches: " + poi.name);
    }
    if (!(poi.sigma_km > 0.0) || !std::isfinite(poi.sigma_km) ||
        !(poi.popularity > 0.0) || !std::isfinite(poi.popularity)) {
      return Status::InvalidArgument("bad POI sigma/popularity: " + poi.name);
    }
    for (const geo::LatLon& b : poi.branches) {
      if (!ValidLat(b.lat) || !ValidLon(b.lon)) {
        return Status::InvalidArgument("POI branch out of range: " + poi.name);
      }
    }
    for (const std::string& alias : poi.aliases) {
      if (alias.empty()) return Status::InvalidArgument("empty POI alias");
    }
  }
  for (const data::TopicSpec& topic : world.topics) {
    if (topic.name.empty()) return Status::InvalidArgument("topic with empty name");
    if (topic.phases.empty()) {
      return Status::InvalidArgument("topic without phases: " + topic.name);
    }
    for (const data::TopicPhase& phase : topic.phases) {
      if (!std::isfinite(phase.start_day) || !std::isfinite(phase.end_day) ||
          !(phase.start_day < phase.end_day) || !std::isfinite(phase.rate) ||
          phase.rate < 0.0) {
        return Status::InvalidArgument("bad topic phase: " + topic.name);
      }
      for (const auto& [poi_index, weight] : phase.poi_affinity) {
        if (poi_index >= world.pois.size()) {
          return Status::InvalidArgument("phase affinity POI index out of range: " +
                                         topic.name);
        }
        if (!(weight > 0.0) || !std::isfinite(weight)) {
          return Status::InvalidArgument("phase affinity weight must be > 0: " +
                                         topic.name);
        }
      }
    }
  }
  return Status::Ok();
}

struct SectionSpec {
  const char* name;
  bool required;
};

constexpr SectionSpec kSections[] = {
    {"world", true},  {"rng", true},   {"vocab", true},      {"graph", true},
    {"model", true},  {"serve", true}, {"trainstate", false}, {"modelbin", false},
};

std::string SectionPath(const std::string& dir, const std::string& name) {
  return dir + "/" + name + ".section";
}

}  // namespace

std::string SerializeWorldConfig(const data::WorldConfig& world) {
  EDGE_CHECK(LineSafe(world.name) && LineSafe(world.start_date));
  std::ostringstream os;
  os.precision(17);
  os << "EDGE-WORLD v1\n";
  os << "name " << world.name << "\n";
  os << "start " << world.start_date << "\n";
  os << "timeline " << world.timeline_days << "\n";
  os << "region " << world.region.min_lat << " " << world.region.max_lat << " "
     << world.region.min_lon << " " << world.region.max_lon << "\n";
  os << "rates " << world.no_topic_rate << " " << world.p_mention_poi << " "
     << world.p_alias_mention << " " << world.p_mention_topic << " "
     << world.p_second_poi << " " << world.p_coarse_area << " " << world.p_no_entity
     << "\n";
  os << "seed " << world.seed << "\n";
  os << "pois " << world.pois.size() << "\n";
  for (const data::PoiSpec& poi : world.pois) {
    EDGE_CHECK(LineSafe(poi.name));
    os << "poi " << static_cast<int>(poi.category) << " " << poi.sigma_km << " "
       << poi.popularity << " " << poi.branches.size() << " " << poi.aliases.size()
       << "\n";
    os << poi.name << "\n";
    for (const geo::LatLon& b : poi.branches) os << b.lat << " " << b.lon << "\n";
    for (const std::string& alias : poi.aliases) {
      EDGE_CHECK(LineSafe(alias));
      os << alias << "\n";
    }
  }
  os << "topics " << world.topics.size() << "\n";
  for (const data::TopicSpec& topic : world.topics) {
    EDGE_CHECK(LineSafe(topic.name));
    os << "topic " << static_cast<int>(topic.category) << " " << topic.phases.size()
       << "\n";
    os << topic.name << "\n";
    for (const data::TopicPhase& phase : topic.phases) {
      os << "phase " << phase.start_day << " " << phase.end_day << " " << phase.rate
         << " " << phase.poi_affinity.size();
      for (const auto& [poi_index, weight] : phase.poi_affinity) {
        os << " " << poi_index << " " << weight;
      }
      os << "\n";
    }
  }
  os << "background " << world.background_words.size() << "\n";
  for (const std::string& word : world.background_words) {
    EDGE_CHECK(LineSafe(word));
    os << word << "\n";
  }
  return os.str();
}

Result<data::WorldConfig> ParseWorldConfig(const std::string& content) {
  LineReader reader(content);
  std::string line;
  if (!reader.Next(&line) || line != "EDGE-WORLD v1") {
    return Status::InvalidArgument("bad world section header");
  }
  data::WorldConfig world;
  if (!reader.Next(&line) || line.compare(0, 5, "name ") != 0) {
    return Status::InvalidArgument("missing world name line");
  }
  world.name = line.substr(5);
  if (!reader.Next(&line) || line.compare(0, 6, "start ") != 0) {
    return Status::InvalidArgument("missing world start line");
  }
  world.start_date = line.substr(6);
  if (!reader.Next(&line)) return TruncatedError("world", reader);
  Status status = ParseTaggedDoubles(line, "timeline", {&world.timeline_days});
  if (!status.ok()) return status;
  if (!reader.Next(&line)) return TruncatedError("world", reader);
  status = ParseTaggedDoubles(line, "region",
                              {&world.region.min_lat, &world.region.max_lat,
                               &world.region.min_lon, &world.region.max_lon});
  if (!status.ok()) return status;
  if (!reader.Next(&line)) return TruncatedError("world", reader);
  status = ParseTaggedDoubles(
      line, "rates",
      {&world.no_topic_rate, &world.p_mention_poi, &world.p_alias_mention,
       &world.p_mention_topic, &world.p_second_poi, &world.p_coarse_area,
       &world.p_no_entity});
  if (!status.ok()) return status;
  if (!reader.Next(&line)) return TruncatedError("world", reader);
  {
    std::istringstream is(line);
    std::string tag;
    is >> tag >> world.seed;
    if (is.fail() || tag != "seed") {
      return Status::InvalidArgument("bad world seed line");
    }
  }

  size_t num_pois = 0;
  if (!reader.Next(&line)) return TruncatedError("world", reader);
  status = ParseTaggedCount(line, "pois", kMaxPois, &num_pois);
  if (!status.ok()) return status;
  world.pois.reserve(num_pois);
  for (size_t p = 0; p < num_pois; ++p) {
    if (!reader.Next(&line)) return TruncatedError("world", reader);
    std::istringstream is(line);
    std::string tag;
    long long category = -1;
    long long num_branches = -1, num_aliases = -1;
    data::PoiSpec poi;
    is >> tag >> category >> poi.sigma_km >> poi.popularity >> num_branches >>
        num_aliases;
    if (is.fail() || tag != "poi" || num_branches < 0 || num_aliases < 0) {
      return Status::InvalidArgument("bad poi header line");
    }
    if (static_cast<size_t>(num_branches) > kMaxBranches ||
        static_cast<size_t>(num_aliases) > kMaxAliases) {
      return Status::InvalidArgument("implausible poi branch/alias count");
    }
    status = ParseCategory(category, &poi.category);
    if (!status.ok()) return status;
    if (!reader.Next(&poi.name)) return TruncatedError("world", reader);
    for (long long b = 0; b < num_branches; ++b) {
      if (!reader.Next(&line)) return TruncatedError("world", reader);
      geo::LatLon branch;
      std::istringstream bs(line);
      bs >> branch.lat >> branch.lon;
      if (bs.fail()) return Status::InvalidArgument("bad poi branch line");
      poi.branches.push_back(branch);
    }
    for (long long a = 0; a < num_aliases; ++a) {
      std::string alias;
      if (!reader.Next(&alias)) return TruncatedError("world", reader);
      poi.aliases.push_back(std::move(alias));
    }
    world.pois.push_back(std::move(poi));
  }

  size_t num_topics = 0;
  if (!reader.Next(&line)) return TruncatedError("world", reader);
  status = ParseTaggedCount(line, "topics", kMaxTopics, &num_topics);
  if (!status.ok()) return status;
  world.topics.reserve(num_topics);
  for (size_t t = 0; t < num_topics; ++t) {
    if (!reader.Next(&line)) return TruncatedError("world", reader);
    std::istringstream is(line);
    std::string tag;
    long long category = -1, num_phases = -1;
    is >> tag >> category >> num_phases;
    if (is.fail() || tag != "topic" || num_phases < 0 ||
        static_cast<size_t>(num_phases) > kMaxPhases) {
      return Status::InvalidArgument("bad topic header line");
    }
    data::TopicSpec topic;
    status = ParseCategory(category, &topic.category);
    if (!status.ok()) return status;
    if (!reader.Next(&topic.name)) return TruncatedError("world", reader);
    for (long long ph = 0; ph < num_phases; ++ph) {
      if (!reader.Next(&line)) return TruncatedError("world", reader);
      std::istringstream ps(line);
      std::string ptag;
      long long num_affinity = -1;
      data::TopicPhase phase;
      ps >> ptag >> phase.start_day >> phase.end_day >> phase.rate >> num_affinity;
      if (ps.fail() || ptag != "phase" || num_affinity < 0 ||
          static_cast<size_t>(num_affinity) > kMaxAffinity) {
        return Status::InvalidArgument("bad topic phase line");
      }
      for (long long k = 0; k < num_affinity; ++k) {
        long long poi_index = -1;
        double weight = 0.0;
        ps >> poi_index >> weight;
        if (ps.fail() || poi_index < 0) {
          return Status::InvalidArgument("bad phase affinity pair");
        }
        phase.poi_affinity.emplace_back(static_cast<size_t>(poi_index), weight);
      }
      topic.phases.push_back(std::move(phase));
    }
    world.topics.push_back(std::move(topic));
  }

  size_t num_words = 0;
  if (!reader.Next(&line)) return TruncatedError("world", reader);
  status = ParseTaggedCount(line, "background", kMaxWords, &num_words);
  if (!status.ok()) return status;
  world.background_words.reserve(num_words);
  for (size_t w = 0; w < num_words; ++w) {
    std::string word;
    if (!reader.Next(&word)) return TruncatedError("world", reader);
    world.background_words.push_back(std::move(word));
  }
  if (reader.Next(&line)) {
    return Status::InvalidArgument("trailing garbage after world section");
  }
  status = ValidateWorld(world);
  if (!status.ok()) return status;
  return world;
}

std::string SerializeVocabulary(const text::Vocabulary& vocabulary) {
  std::ostringstream os;
  os << "EDGE-VOCAB v1\n";
  os << vocabulary.size() << " " << vocabulary.total_count() << "\n";
  for (size_t id = 0; id < vocabulary.size(); ++id) {
    EDGE_CHECK(LineSafe(vocabulary.TokenOf(id)));
    os << vocabulary.CountOf(id) << " " << vocabulary.TokenOf(id) << "\n";
  }
  return os.str();
}

Result<text::Vocabulary> ParseVocabulary(const std::string& content) {
  LineReader reader(content);
  std::string line;
  if (!reader.Next(&line) || line != "EDGE-VOCAB v1") {
    return Status::InvalidArgument("bad vocab section header");
  }
  if (!reader.Next(&line)) return TruncatedError("vocab", reader);
  std::istringstream hs(line);
  long long size = -1, total = -1;
  hs >> size >> total;
  if (hs.fail() || size < 0 || total < 0 || static_cast<size_t>(size) > kMaxVocab) {
    return Status::InvalidArgument("bad vocab header counts");
  }
  text::Vocabulary vocabulary;
  for (long long i = 0; i < size; ++i) {
    if (!reader.Next(&line)) return TruncatedError("vocab", reader);
    size_t space = line.find(' ');
    if (space == std::string::npos || space + 1 >= line.size()) {
      return Status::InvalidArgument("bad vocab entry line");
    }
    long long count = -1;
    std::istringstream cs(line.substr(0, space));
    cs >> count;
    if (cs.fail() || count < 0) {
      return Status::InvalidArgument("bad vocab entry count");
    }
    std::string token = line.substr(space + 1);
    if (vocabulary.Lookup(token) != text::Vocabulary::kNotFound) {
      return Status::InvalidArgument("duplicate vocab token: " + token);
    }
    vocabulary.Add(token, count);
  }
  if (reader.Next(&line)) {
    return Status::InvalidArgument("trailing garbage after vocab section");
  }
  if (vocabulary.total_count() != total) {
    return Status::InvalidArgument("vocab total count disagrees with entries");
  }
  return vocabulary;
}

std::string SerializeEntityGraph(const graph::EntityGraph& graph) {
  std::ostringstream os;
  os.precision(17);
  os << "EDGE-GRAPH v1\n";
  os << "nodes " << graph.num_nodes() << "\n";
  for (size_t id = 0; id < graph.num_nodes(); ++id) {
    EDGE_CHECK(LineSafe(graph.NodeName(id)));
    os << graph.NodeName(id) << "\n";
  }
  os << "edges " << graph.num_edges() << "\n";
  // Canonical order (ascending a, then b) so identical graphs serialize to
  // identical bytes regardless of hash-map iteration order.
  for (size_t a = 0; a < graph.num_nodes(); ++a) {
    std::vector<std::pair<size_t, double>> higher;
    for (const auto& [b, w] : graph.Neighbors(a)) {
      if (b > a) higher.emplace_back(b, w);
    }
    std::sort(higher.begin(), higher.end());
    for (const auto& [b, w] : higher) {
      os << a << " " << b << " " << w << "\n";
    }
  }
  return os.str();
}

Result<graph::EntityGraph> ParseEntityGraph(const std::string& content) {
  LineReader reader(content);
  std::string line;
  if (!reader.Next(&line) || line != "EDGE-GRAPH v1") {
    return Status::InvalidArgument("bad graph section header");
  }
  size_t num_nodes = 0;
  if (!reader.Next(&line)) return TruncatedError("graph", reader);
  Status status = ParseTaggedCount(line, "nodes", kMaxNodes, &num_nodes);
  if (!status.ok()) return status;
  std::vector<std::string> names;
  names.reserve(num_nodes);
  std::unordered_set<std::string> seen_names;
  for (size_t n = 0; n < num_nodes; ++n) {
    std::string name;
    if (!reader.Next(&name)) return TruncatedError("graph", reader);
    if (name.empty()) return Status::InvalidArgument("empty graph node name");
    if (!seen_names.insert(name).second) {
      return Status::InvalidArgument("duplicate graph node name: " + name);
    }
    names.push_back(std::move(name));
  }
  size_t num_edges = 0;
  if (!reader.Next(&line)) return TruncatedError("graph", reader);
  status = ParseTaggedCount(line, "edges", kMaxEdges, &num_edges);
  if (!status.ok()) return status;
  std::vector<graph::EntityGraph::WeightedEdge> edges;
  edges.reserve(num_edges);
  std::unordered_set<uint64_t> seen_edges;
  for (size_t e = 0; e < num_edges; ++e) {
    if (!reader.Next(&line)) return TruncatedError("graph", reader);
    std::istringstream es(line);
    long long a = -1, b = -1;
    double w = 0.0;
    es >> a >> b >> w;
    if (es.fail() || a < 0 || b < 0) {
      return Status::InvalidArgument("bad graph edge line");
    }
    graph::EntityGraph::WeightedEdge edge{static_cast<size_t>(a),
                                          static_cast<size_t>(b), w};
    if (edge.a >= edge.b || edge.b >= names.size()) {
      return Status::InvalidArgument("graph edge endpoints out of range");
    }
    if (!(w > 0.0) || !std::isfinite(w)) {
      return Status::InvalidArgument("graph edge weight must be finite and > 0");
    }
    uint64_t key = (static_cast<uint64_t>(edge.a) << 32) | static_cast<uint64_t>(edge.b);
    if (!seen_edges.insert(key).second) {
      return Status::InvalidArgument("duplicate graph edge");
    }
    edges.push_back(edge);
  }
  if (reader.Next(&line)) {
    return Status::InvalidArgument("trailing garbage after graph section");
  }
  // Every precondition of FromParts is now established; it cannot abort.
  return graph::EntityGraph::FromParts(std::move(names), edges);
}

std::string SerializeServeOptions(const serve::GeoServiceOptions& options) {
  std::ostringstream os;
  os.precision(17);
  os << "EDGE-SERVE-OPTIONS v1\n";
  os << "max_batch " << options.max_batch << "\n";
  os << "max_delay_ms " << options.max_delay_ms << "\n";
  os << "num_workers " << options.num_workers << "\n";
  os << "queue_capacity " << options.queue_capacity << "\n";
  os << "cache_capacity " << options.cache_capacity << "\n";
  os << "default_deadline_ms " << options.default_deadline_ms << "\n";
  os << "predict_threads " << options.predict_threads << "\n";
  return os.str();
}

Result<serve::GeoServiceOptions> ParseServeOptions(const std::string& content) {
  LineReader reader(content);
  std::string line;
  if (!reader.Next(&line) || line != "EDGE-SERVE-OPTIONS v1") {
    return Status::InvalidArgument("bad serve options section header");
  }
  serve::GeoServiceOptions options;
  auto read_size = [&](const char* tag, size_t* out) -> Status {
    if (!reader.Next(&line)) return TruncatedError("serve", reader);
    std::istringstream is(line);
    std::string got;
    long long v = -1;
    is >> got >> v;
    if (is.fail() || got != tag || v < 0) {
      return Status::InvalidArgument(std::string("bad serve option line: ") + tag);
    }
    *out = static_cast<size_t>(v);
    return Status::Ok();
  };
  auto read_double = [&](const char* tag, double* out) -> Status {
    if (!reader.Next(&line)) return TruncatedError("serve", reader);
    return ParseTaggedDoubles(line, tag, {out});
  };
  Status status = read_size("max_batch", &options.max_batch);
  if (status.ok()) status = read_double("max_delay_ms", &options.max_delay_ms);
  if (status.ok()) status = read_size("num_workers", &options.num_workers);
  if (status.ok()) status = read_size("queue_capacity", &options.queue_capacity);
  if (status.ok()) status = read_size("cache_capacity", &options.cache_capacity);
  if (status.ok()) {
    status = read_double("default_deadline_ms", &options.default_deadline_ms);
  }
  size_t predict_threads = 0;
  if (status.ok()) status = read_size("predict_threads", &predict_threads);
  if (!status.ok()) return status;
  options.predict_threads = static_cast<int>(predict_threads);
  if (reader.Next(&line)) {
    return Status::InvalidArgument("trailing garbage after serve options section");
  }
  status = options.Validate();
  if (!status.ok()) return status;
  return options;
}

Result<SystemSnapshot> CaptureSystemSnapshot(const core::EdgeModel& model,
                                             const data::WorldConfig& world,
                                             const data::ProcessedDataset& dataset,
                                             const serve::GeoServiceOptions& options) {
  Status status = options.Validate();
  if (!status.ok()) return status;
  status = ValidateWorld(world);
  if (!status.ok()) return status;
  SystemSnapshot snapshot;
  snapshot.world = world;
  snapshot.rng = Rng(world.seed).SaveState();
  std::ostringstream model_out;
  status = model.SaveInference(&model_out);
  if (!status.ok()) return status;
  snapshot.model_checkpoint = model_out.str();
  // fp64 keeps the store's predictions bitwise-identical to the text
  // checkpoint, so either section can serve the replay.
  status = core::SerializeModelStore(model, core::EmbedPrecision::kFp64,
                                     &snapshot.model_store);
  if (!status.ok()) return status;
  snapshot.graph = model.entity_graph();
  for (const data::ProcessedTweet& tweet : dataset.train) {
    for (const text::Entity& entity : tweet.entities) {
      snapshot.vocabulary.Add(entity.name);
    }
  }
  snapshot.serve_options = options;
  return snapshot;
}

Status SaveSystemSnapshot(const SystemSnapshot& snapshot, const std::string& dir) {
  // Pre-write consistency gate: the vocabulary must cover the graph node set
  // (Load enforces this, so catch a mismatched capture before it persists).
  for (size_t id = 0; id < snapshot.graph.num_nodes(); ++id) {
    if (snapshot.vocabulary.Lookup(snapshot.graph.NodeName(id)) ==
        text::Vocabulary::kNotFound) {
      return Status::FailedPrecondition("graph node missing from vocabulary: " +
                                        snapshot.graph.NodeName(id));
    }
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("cannot create snapshot dir " + dir + ": " + ec.message());
  }

  std::vector<std::pair<std::string, std::string>> sections;
  sections.emplace_back("world", SerializeWorldConfig(snapshot.world));
  sections.emplace_back("rng", SerializeRngState(snapshot.rng) + "\n");
  sections.emplace_back("vocab", SerializeVocabulary(snapshot.vocabulary));
  sections.emplace_back("graph", SerializeEntityGraph(snapshot.graph));
  sections.emplace_back("model", snapshot.model_checkpoint);
  sections.emplace_back("serve", SerializeServeOptions(snapshot.serve_options));
  if (snapshot.has_train_state) {
    sections.emplace_back("trainstate", core::SerializeTrainState(snapshot.train_state));
  }
  if (!snapshot.model_store.empty()) {
    sections.emplace_back("modelbin", snapshot.model_store);
  }

  std::ostringstream manifest;
  manifest << "EDGE-SNAPSHOT v1\n";
  for (const auto& [name, payload] : sections) {
    Status status = WriteFileAtomic(SectionPath(dir, name), payload,
                                    "io.snapshot.write");
    if (!status.ok()) return status;
    manifest << "section " << name << " " << payload.size() << " "
             << ToHex16(Fnv1a64(payload)) << "\n";
  }
  std::string body = manifest.str();
  // The manifest is written last: a save torn before this point leaves no
  // manifest, which Load rejects outright.
  return WriteFileAtomic(dir + "/MANIFEST",
                         body + "END " + ToHex16(Fnv1a64(body)) + "\n",
                         "io.snapshot.write");
}

Result<SystemSnapshot> LoadSystemSnapshot(const std::string& dir) {
  std::string manifest;
  Status status = ReadFileToString(dir + "/MANIFEST", &manifest, "io.snapshot.read");
  if (!status.ok()) return status;

  // Checksum gate on the manifest itself: it must end with "END <16-hex>\n"
  // hashing every preceding byte, so every strict truncation prefix and any
  // bit flip is rejected before a single section is opened.
  if (manifest.empty() || manifest.back() != '\n') {
    return Status::InvalidArgument("snapshot manifest not newline-terminated");
  }
  size_t body_end = manifest.rfind('\n', manifest.size() - 2);
  size_t last_line_start = body_end == std::string::npos ? 0 : body_end + 1;
  std::string last_line =
      manifest.substr(last_line_start, manifest.size() - 1 - last_line_start);
  uint64_t want = 0;
  if (last_line.size() != 4 + 16 || last_line.compare(0, 4, "END ") != 0 ||
      !FromHex16(last_line.substr(4), &want)) {
    return Status::InvalidArgument("snapshot manifest missing END checksum line");
  }
  if (Fnv1a64Bytes(manifest.data(), last_line_start) != want) {
    return Status::InvalidArgument("snapshot manifest checksum mismatch");
  }

  LineReader reader(manifest.substr(0, last_line_start));
  std::string line;
  if (!reader.Next(&line) || line != "EDGE-SNAPSHOT v1") {
    return Status::InvalidArgument("bad snapshot manifest header");
  }
  struct Listed {
    size_t bytes = 0;
    uint64_t checksum = 0;
  };
  std::unordered_map<std::string, Listed> listed;
  while (reader.Next(&line)) {
    std::istringstream is(line);
    std::string tag, name, hex;
    long long bytes = -1;
    is >> tag >> name >> bytes >> hex;
    Listed entry;
    if (is.fail() || tag != "section" || bytes < 0 ||
        static_cast<size_t>(bytes) > kMaxSectionBytes ||
        !FromHex16(hex, &entry.checksum)) {
      return Status::InvalidArgument("bad manifest section line");
    }
    bool known = false;
    for (const SectionSpec& spec : kSections) {
      if (name == spec.name) known = true;
    }
    if (!known) return Status::InvalidArgument("unknown snapshot section: " + name);
    entry.bytes = static_cast<size_t>(bytes);
    if (!listed.emplace(name, entry).second) {
      return Status::InvalidArgument("duplicate manifest section: " + name);
    }
  }
  for (const SectionSpec& spec : kSections) {
    if (spec.required && listed.find(spec.name) == listed.end()) {
      return Status::InvalidArgument(std::string("manifest missing section: ") +
                                     spec.name);
    }
  }

  auto read_section = [&](const std::string& name, std::string* payload) -> Status {
    const Listed& entry = listed.at(name);
    Status status =
        ReadFileToString(SectionPath(dir, name), payload, "io.snapshot.read");
    if (!status.ok()) return status;
    if (payload->size() != entry.bytes) {
      return Status::InvalidArgument("section '" + name + "' size mismatch (" +
                                     std::to_string(payload->size()) + " vs manifest " +
                                     std::to_string(entry.bytes) + ")");
    }
    if (Fnv1a64(*payload) != entry.checksum) {
      return Status::InvalidArgument("section '" + name +
                                     "' checksum mismatch (torn write or bit flip)");
    }
    return Status::Ok();
  };

  SystemSnapshot snapshot;
  std::string payload;

  status = read_section("world", &payload);
  if (!status.ok()) return status;
  Result<data::WorldConfig> world = ParseWorldConfig(payload);
  if (!world.ok()) return world.status();
  snapshot.world = std::move(world).value();

  status = read_section("rng", &payload);
  if (!status.ok()) return status;
  if (!payload.empty() && payload.back() == '\n') payload.pop_back();
  if (!ParseRngState(payload, &snapshot.rng)) {
    return Status::InvalidArgument("bad rng section");
  }

  status = read_section("vocab", &payload);
  if (!status.ok()) return status;
  Result<text::Vocabulary> vocabulary = ParseVocabulary(payload);
  if (!vocabulary.ok()) return vocabulary.status();
  snapshot.vocabulary = std::move(vocabulary).value();

  status = read_section("graph", &payload);
  if (!status.ok()) return status;
  Result<graph::EntityGraph> graph = ParseEntityGraph(payload);
  if (!graph.ok()) return graph.status();
  snapshot.graph = std::move(graph).value();

  status = read_section("model", &snapshot.model_checkpoint);
  if (!status.ok()) return status;
  // Full LoadInference validation pass: the stored stream must construct a
  // servable model (magic, dimensions, finiteness, plausibility gates).
  std::istringstream model_in(snapshot.model_checkpoint);
  Result<std::unique_ptr<core::EdgeModel>> model =
      core::EdgeModel::LoadInference(&model_in);
  if (!model.ok()) {
    return Status::InvalidArgument("model section rejected: " +
                                   model.status().ToString());
  }

  status = read_section("serve", &payload);
  if (!status.ok()) return status;
  Result<serve::GeoServiceOptions> options = ParseServeOptions(payload);
  if (!options.ok()) return options.status();
  snapshot.serve_options = std::move(options).value();

  if (listed.find("trainstate") != listed.end()) {
    status = read_section("trainstate", &payload);
    if (!status.ok()) return status;
    Result<core::TrainState> train_state = core::ParseTrainState(payload);
    if (!train_state.ok()) return train_state.status();
    snapshot.train_state = std::move(train_state).value();
    snapshot.has_train_state = true;
  }

  if (listed.find("modelbin") != listed.end()) {
    status = read_section("modelbin", &snapshot.model_store);
    if (!status.ok()) return status;
    // Full store validation (header, manifest, per-section checksums, finite
    // scans), then a cross-check that the binary store describes the same
    // model as the text section: same vocabulary, id for id.
    Result<std::shared_ptr<const core::MmapModelStore>> store =
        core::MmapModelStore::FromBytes(snapshot.model_store,
                                        core::StoreVerify::kFull);
    if (!store.ok()) {
      return Status::InvalidArgument("modelbin section rejected: " +
                                     store.status().ToString());
    }
    const core::MmapModelStore& bin = *store.value();
    if (bin.num_nodes() != model.value()->num_entities()) {
      return Status::InvalidArgument(
          "modelbin and model sections disagree on node count");
    }
    for (size_t id = 0; id < bin.num_nodes(); ++id) {
      if (bin.NodeName(id) != model.value()->NodeNameOf(id)) {
        return Status::InvalidArgument(
            "modelbin and model sections disagree at node " + std::to_string(id));
      }
    }
  }

  // Cross-section consistency: the model's node table must be the graph's,
  // id for id, and every graph node must be a vocabulary entry — a snapshot
  // assembled from mismatched captures must not load.
  const graph::EntityGraph& model_graph = model.value()->entity_graph();
  if (model_graph.num_nodes() != snapshot.graph.num_nodes()) {
    return Status::InvalidArgument("model and graph sections disagree on node count");
  }
  for (size_t id = 0; id < snapshot.graph.num_nodes(); ++id) {
    if (model_graph.NodeName(id) != snapshot.graph.NodeName(id)) {
      return Status::InvalidArgument("model and graph sections disagree at node " +
                                     std::to_string(id));
    }
    if (snapshot.vocabulary.Lookup(snapshot.graph.NodeName(id)) ==
        text::Vocabulary::kNotFound) {
      return Status::InvalidArgument("graph node missing from vocabulary: " +
                                     snapshot.graph.NodeName(id));
    }
  }
  return snapshot;
}

}  // namespace edge::snapshot
