#include "edge/snapshot/scenario.h"

#include <cmath>
#include <cstring>
#include <future>
#include <sstream>
#include <utility>

#include "edge/common/file_util.h"
#include "edge/common/hash.h"
#include "edge/data/generator.h"
#include "edge/fault/fault.h"
#include "edge/geo/projection.h"
#include "edge/obs/json_util.h"
#include "edge/serve/json_codec.h"

namespace edge::snapshot {

namespace {

constexpr size_t kMaxEvents = size_t{1} << 16;
constexpr size_t kMaxRequestsPerEvent = size_t{1} << 20;
constexpr size_t kMaxPoolTweets = size_t{1} << 20;
/// Rejection-sampling bound for outage-filtered pool draws; hitting it means
/// the outage box covers (essentially) the whole pool.
constexpr size_t kMaxSampleAttempts = 100000;

Status ScriptError(size_t line_number, const std::string& message) {
  return Status::InvalidArgument("scenario line " + std::to_string(line_number) +
                                 ": " + message);
}

/// "majestic_theatre" -> "majestic theatre": the surface form the gazetteer
/// NER recognizes for a canonical entity name.
std::string SurfaceForm(const std::string& canonical) {
  std::string surface = canonical;
  for (char& c : surface) {
    if (c == '_') c = ' ';
  }
  return surface;
}

/// Disarms script-configured fault points on every exit path, so a failed
/// replay can't leak latency/error injection into the rest of the process.
struct FaultGuard {
  bool touched = false;
  ~FaultGuard() {
    if (touched) fault::Disarm();
  }
};

void HashBits(uint64_t* digest, double value) {
  uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  char raw[sizeof(bits)];
  std::memcpy(raw, &bits, sizeof(bits));
  *digest = Fnv1a64Bytes(raw, sizeof(raw), *digest);
}

void HashBits(uint64_t* digest, uint64_t value) {
  char raw[sizeof(value)];
  std::memcpy(raw, &value, sizeof(value));
  *digest = Fnv1a64Bytes(raw, sizeof(raw), *digest);
}

}  // namespace

Result<Scenario> ParseScenario(const std::string& content) {
  Scenario scenario;
  std::istringstream in(content);
  std::string line;
  size_t line_number = 0;
  bool saw_header = false;
  bool saw_name = false;
  while (std::getline(in, line)) {
    ++line_number;
    size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    size_t last = line.find_last_not_of(" \t\r");
    std::string trimmed = line.substr(first, last - first + 1);

    if (!saw_header) {
      if (trimmed != "EDGE-SCENARIO v1") {
        return ScriptError(line_number, "expected 'EDGE-SCENARIO v1' header");
      }
      saw_header = true;
      continue;
    }

    std::istringstream is(trimmed);
    std::string directive;
    is >> directive;
    if (directive == "name") {
      std::string rest;
      std::getline(is, rest);
      size_t start = rest.find_first_not_of(" \t");
      if (start == std::string::npos) {
        return ScriptError(line_number, "name requires a value");
      }
      scenario.name = rest.substr(start);
      saw_name = true;
    } else if (directive == "seed") {
      if (!(is >> scenario.seed)) {
        return ScriptError(line_number, "bad seed value");
      }
      scenario.has_seed = true;
    } else if (directive == "pool") {
      long long n = -1;
      if (!(is >> n) || n < 0 || static_cast<size_t>(n) > kMaxPoolTweets) {
        return ScriptError(line_number, "bad pool size");
      }
      scenario.pool_tweets = static_cast<size_t>(n);
    } else if (directive == "event") {
      if (scenario.events.size() >= kMaxEvents) {
        return ScriptError(line_number, "too many events");
      }
      std::string kind;
      is >> kind;
      ScenarioEvent event;
      if (kind == "burst") {
        event.type = ScenarioEvent::Type::kBurst;
        long long n = -1;
        if (!(is >> n) || n <= 0 ||
            static_cast<size_t>(n) > kMaxRequestsPerEvent) {
          return ScriptError(line_number, "burst requires a positive count");
        }
        event.count = static_cast<size_t>(n);
      } else if (kind == "skew") {
        event.type = ScenarioEvent::Type::kSkew;
        long long n = -1;
        if (!(is >> event.entity >> n) || event.entity.empty() || n <= 0 ||
            static_cast<size_t>(n) > kMaxRequestsPerEvent) {
          return ScriptError(line_number, "skew requires '<entity> <count>'");
        }
        event.count = static_cast<size_t>(n);
      } else if (kind == "text") {
        event.type = ScenarioEvent::Type::kText;
        std::string rest;
        std::getline(is, rest);
        size_t start = rest.find_first_not_of(" \t");
        if (start == std::string::npos) {
          return ScriptError(line_number, "text requires request text");
        }
        event.text = rest.substr(start);
        event.count = 1;
      } else if (kind == "reload") {
        event.type = ScenarioEvent::Type::kReload;
      } else if (kind == "fault") {
        event.type = ScenarioEvent::Type::kFault;
        std::string rest;
        std::getline(is, rest);
        size_t start = rest.find_first_not_of(" \t");
        if (start == std::string::npos) {
          return ScriptError(line_number, "fault requires a spec or 'off'");
        }
        std::string spec = rest.substr(start);
        if (spec == "off") {
          event.off = true;
        } else {
          event.text = std::move(spec);
        }
      } else if (kind == "outage") {
        event.type = ScenarioEvent::Type::kOutage;
        std::string rest;
        std::getline(is, rest);
        std::istringstream os(rest);
        std::string word;
        os >> word;
        if (word == "off") {
          event.off = true;
        } else {
          std::istringstream bs(rest);
          bs >> event.outage.min_lat >> event.outage.max_lat >>
              event.outage.min_lon >> event.outage.max_lon;
          if (bs.fail() || !std::isfinite(event.outage.min_lat) ||
              !std::isfinite(event.outage.max_lat) ||
              !std::isfinite(event.outage.min_lon) ||
              !std::isfinite(event.outage.max_lon) ||
              event.outage.min_lat > event.outage.max_lat ||
              event.outage.min_lon > event.outage.max_lon) {
            return ScriptError(line_number,
                               "outage requires 'off' or a valid bounding box");
          }
        }
      } else {
        return ScriptError(line_number, "unknown event kind: " + kind);
      }
      scenario.events.push_back(std::move(event));
    } else {
      return ScriptError(line_number, "unknown directive: " + directive);
    }
  }
  if (!saw_header) return Status::InvalidArgument("empty scenario script");
  if (!saw_name) return Status::InvalidArgument("scenario script missing name");
  return scenario;
}

Result<ScenarioResult> RunScenario(const SystemSnapshot& snapshot,
                                   const Scenario& scenario,
                                   const ScenarioRunOptions& options) {
  // The snapshot came through Load (fully validated) or Capture (live
  // components); the generator's own invariant checks cannot fire here.
  data::TweetGenerator generator(snapshot.world);

  serve::GeoServiceOptions serve_options = snapshot.serve_options;
  // Deadline expiry is a wall-clock race; the determinism contract requires
  // it off regardless of what the snapshot was serving with.
  serve_options.default_deadline_ms = 0.0;
  if (options.num_workers > 0) serve_options.num_workers = options.num_workers;
  if (options.predict_threads >= 0) {
    serve_options.predict_threads = options.predict_threads;
  }
  Status status = serve_options.Validate();
  if (!status.ok()) return status;

  std::istringstream checkpoint(snapshot.model_checkpoint);
  Result<std::unique_ptr<serve::GeoService>> service = serve::GeoService::Create(
      &checkpoint, generator.BuildGazetteer(), serve_options);
  if (!service.ok()) return service.status();
  serve::GeoService& geo = *service.value();

  bool needs_pool = false;
  for (const ScenarioEvent& event : scenario.events) {
    if (event.type == ScenarioEvent::Type::kBurst) needs_pool = true;
  }
  data::Dataset pool;
  if (needs_pool) {
    if (scenario.pool_tweets == 0) {
      return Status::InvalidArgument("scenario has burst events but pool 0");
    }
    pool = generator.Generate(scenario.pool_tweets);
  }

  Rng rng;
  if (scenario.has_seed) {
    rng.Seed(scenario.seed);
  } else {
    rng.RestoreState(snapshot.rng);
  }

  ScenarioResult result;
  uint64_t digest = kFnv1a64Offset;
  auto emit = [&](std::string line) {
    digest = Fnv1a64(line, digest);
    digest = Fnv1a64("\n", digest);
    if (options.out != nullptr) *options.out << line << "\n";
    result.lines.push_back(std::move(line));
  };

  bool outage_active = false;
  geo::BoundingBox outage_box;
  auto sample_text = [&]() -> Result<std::string> {
    for (size_t attempt = 0; attempt < kMaxSampleAttempts; ++attempt) {
      const data::Tweet& tweet =
          pool.tweets[rng.UniformInt(pool.tweets.size())];
      if (outage_active && outage_box.Contains(tweet.location)) continue;
      return tweet.text;
    }
    return Status::InvalidArgument(
        "outage box covers the entire tweet pool; no traffic can be sampled");
  };

  size_t next_id = 0;
  // Lockstep execution: with the workers frozen, every submit of the event
  // sees a queue whose state is a pure function of submission order, so
  // cache-hit and shed decisions are order-determined, not time-determined.
  // Draining every future before the next event makes cross-event cache
  // contents deterministic too.
  auto run_requests = [&](const std::vector<std::string>& texts) {
    geo.PauseWorkersForTest();
    std::vector<std::pair<std::string, std::future<serve::ServeResponse>>> inflight;
    inflight.reserve(texts.size());
    for (const std::string& text : texts) {
      std::string id = "r" + std::to_string(next_id++);
      inflight.emplace_back(std::move(id), geo.SubmitAsync(text));
    }
    geo.ResumeWorkers();
    for (auto& [id, future] : inflight) {
      serve::ServeResponse response = future.get();
      ++result.requests;
      if (response.from_cache) ++result.cache_hits;
      if (response.degraded) ++result.shed;
      emit(serve::ResponseToJsonLine(response, *response.model, id,
                                     /*include_latency=*/false));
    }
  };

  FaultGuard fault_guard;
  for (const ScenarioEvent& event : scenario.events) {
    switch (event.type) {
      case ScenarioEvent::Type::kBurst: {
        std::vector<std::string> texts;
        texts.reserve(event.count);
        for (size_t i = 0; i < event.count; ++i) {
          Result<std::string> text = sample_text();
          if (!text.ok()) return text.status();
          texts.push_back(std::move(text).value());
        }
        run_requests(texts);
        break;
      }
      case ScenarioEvent::Type::kSkew: {
        std::vector<std::string> texts(
            event.count, "everyone is at " + SurfaceForm(event.entity) + " right now");
        run_requests(texts);
        break;
      }
      case ScenarioEvent::Type::kText: {
        run_requests({event.text});
        break;
      }
      case ScenarioEvent::Type::kReload: {
        std::istringstream reload_in(snapshot.model_checkpoint);
        Status reload_status = geo.ReloadCheckpoint(&reload_in);
        if (!reload_status.ok()) return reload_status;
        emit("{\"event\":\"reload\",\"generation\":" +
             std::to_string(geo.model_generation()) + "}");
        break;
      }
      case ScenarioEvent::Type::kFault: {
        if (event.off) {
          fault::Disarm();
          fault_guard.touched = false;
          emit("{\"event\":\"fault\",\"armed\":false}");
        } else {
          std::string error;
          if (!fault::Configure(event.text, &error)) {
            return Status::InvalidArgument("bad fault spec: " + error);
          }
          fault_guard.touched = true;
          std::string line = "{\"event\":\"fault\",\"armed\":true,\"spec\":";
          obs::internal::AppendJsonString(&line, event.text);
          line.push_back('}');
          emit(std::move(line));
        }
        break;
      }
      case ScenarioEvent::Type::kOutage: {
        if (event.off) {
          outage_active = false;
          emit("{\"event\":\"outage\",\"active\":false}");
        } else {
          outage_active = true;
          outage_box = event.outage;
          std::ostringstream os;
          os.precision(17);
          os << "{\"event\":\"outage\",\"active\":true,\"box\":["
             << outage_box.min_lat << "," << outage_box.max_lat << ","
             << outage_box.min_lon << "," << outage_box.max_lon << "]}";
          emit(os.str());
        }
        break;
      }
    }
  }

  result.digest = ToHex16(digest);
  return result;
}

Result<GoldenRecord> ReadGoldenFile(const std::string& path) {
  std::string content;
  Status status = ReadFileToString(path, &content);
  if (!status.ok()) return status;
  std::istringstream in(content);
  std::string line;
  if (!std::getline(in, line) || line != "EDGE-GOLDEN v1") {
    return Status::InvalidArgument("bad golden file header: " + path);
  }
  GoldenRecord record;
  bool saw_scenario = false, saw_fingerprint = false, saw_digest = false,
       saw_requests = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream is(line);
    std::string key;
    is >> key;
    if (key == "scenario") {
      std::string rest;
      std::getline(is, rest);
      size_t start = rest.find_first_not_of(" \t");
      if (start == std::string::npos) {
        return Status::InvalidArgument("golden file has empty scenario name");
      }
      record.scenario = rest.substr(start);
      saw_scenario = true;
    } else if (key == "fingerprint") {
      if (!(is >> record.fingerprint)) break;
      saw_fingerprint = true;
    } else if (key == "digest") {
      if (!(is >> record.digest)) break;
      saw_digest = true;
    } else if (key == "requests") {
      long long n = -1;
      if (!(is >> n) || n < 0) break;
      record.requests = static_cast<size_t>(n);
      saw_requests = true;
    } else {
      return Status::InvalidArgument("unknown golden file key '" + key + "' in " +
                                     path);
    }
  }
  uint64_t parsed = 0;
  if (!saw_scenario || !saw_fingerprint || !saw_digest || !saw_requests ||
      !FromHex16(record.fingerprint, &parsed) || !FromHex16(record.digest, &parsed)) {
    return Status::InvalidArgument("incomplete or malformed golden file: " + path);
  }
  return record;
}

Status WriteGoldenFile(const std::string& path, const GoldenRecord& record) {
  std::string content = "EDGE-GOLDEN v1\n";
  content += "scenario " + record.scenario + "\n";
  content += "fingerprint " + record.fingerprint + "\n";
  content += "digest " + record.digest + "\n";
  content += "requests " + std::to_string(record.requests) + "\n";
  return WriteFileAtomic(path, content);
}

std::string BuildFingerprint() {
  uint64_t digest = kFnv1a64Offset;
#if defined(__VERSION__)
  digest = Fnv1a64(__VERSION__, digest);
#endif
  // PCG32 stream head: integer path, must agree everywhere — included so a
  // fingerprint mismatch localizes to "libm/codegen" vs "RNG is broken".
  Rng rng(12345);
  for (int i = 0; i < 64; ++i) HashBits(&digest, rng.NextU64());
  // Box-Muller normals exercise log/sqrt/sin/cos.
  for (int i = 0; i < 32; ++i) HashBits(&digest, rng.Normal());
  // The transcendental gauntlet behind mixture densities and haversine.
  const double probes[] = {0.1, 0.5, 1.0 / 3.0, 2.718281828459045,
                           40.7128, 74.0060, 1e-9, 123.456};
  for (double x : probes) {
    HashBits(&digest, std::exp(-x));
    HashBits(&digest, std::log(x));
    HashBits(&digest, std::sin(x));
    HashBits(&digest, std::cos(x));
    HashBits(&digest, std::atan2(x, 1.0 + x));
    HashBits(&digest, std::pow(x, 1.5));
    HashBits(&digest, std::sqrt(x));
  }
  // Projection round-trip: the lat/lon <-> plane trig the serving path runs
  // on every rendered component center.
  geo::LocalProjection projection(geo::LatLon{40.75, -73.98});
  geo::PlanePoint p = projection.ToPlane(geo::LatLon{40.6892, -74.0445});
  HashBits(&digest, p.x);
  HashBits(&digest, p.y);
  geo::LatLon back = projection.ToLatLon(p);
  HashBits(&digest, back.lat);
  HashBits(&digest, back.lon);
  return ToHex16(digest);
}

}  // namespace edge::snapshot
