#ifndef EDGE_SNAPSHOT_FIXTURE_H_
#define EDGE_SNAPSHOT_FIXTURE_H_

#include <memory>
#include <string>

#include "edge/common/status.h"
#include "edge/core/edge_model.h"
#include "edge/data/pipeline.h"
#include "edge/data/worlds.h"
#include "edge/serve/geo_service.h"
#include "edge/snapshot/system_snapshot.h"

/// \file
/// The one shared demo-snapshot builder: generate a preset world, run the
/// full pipeline, train an EdgeModel, and capture the result as a
/// SystemSnapshot. `tools/edge_scenario make`, tests/scenario_test.cc and
/// tests/integration_test.cc all build their fixture through this — a single
/// source of truth, so the snapshot a golden digest was recorded against is
/// by construction the snapshot the tests train.

namespace edge::snapshot {

/// Knobs for the demo fixture. The defaults are the *golden* fixture: the
/// miniature NYMA world + tiny model config the integration tests train
/// (30 fine POIs / 4 coarse / 4 chains / 16 topics, 32-dim embeddings,
/// 40 epochs) and a deliberately small serving queue (64) so spike scenarios
/// shed deterministically. Changing any default invalidates every golden
/// digest — regenerate with `edge_scenario run --update-goldens`.
struct DemoSnapshotOptions {
  /// Preset world: "nyma", "ny2020" or "lama".
  std::string world = "nyma";
  data::WorldPresetOptions preset;
  size_t tweets = 2000;
  core::EdgeConfig config;
  serve::GeoServiceOptions serve;

  DemoSnapshotOptions();
};

/// DemoSnapshotOptions shrunk for instrumented (ASAN/TSAN) CI runs — fewer
/// tweets and epochs. Digest identity assertions still hold (determinism is
/// config-independent); golden comparison does not (different fixture).
DemoSnapshotOptions FastDemoSnapshotOptions();

/// True when EDGE_SCENARIO_FAST is set in the environment (non-empty, not
/// "0"): the scenario/integration fixtures switch to FastDemoSnapshotOptions
/// and golden comparisons are skipped.
bool ScenarioFastModeEnabled();

/// Resolves a preset world by name ("nyma" / "ny2020" / "lama"); unknown
/// names are a Status.
Result<data::WorldConfig> MakeWorldByName(const std::string& name,
                                          const data::WorldPresetOptions& preset);

/// The full fixture, for tests that also need the processed dataset or the
/// live trained model (e.g. integration metrics).
struct DemoArtifacts {
  SystemSnapshot snapshot;
  data::ProcessedDataset dataset;
  std::unique_ptr<core::EdgeModel> model;
};

/// Generates, trains and captures. Deterministic: equal options produce a
/// bitwise-identical snapshot.
Result<DemoArtifacts> BuildDemoArtifacts(const DemoSnapshotOptions& options = {});

/// BuildDemoArtifacts reduced to its snapshot.
Result<SystemSnapshot> BuildDemoSnapshot(const DemoSnapshotOptions& options = {});

}  // namespace edge::snapshot

#endif  // EDGE_SNAPSHOT_FIXTURE_H_
