#ifndef EDGE_SNAPSHOT_SYSTEM_SNAPSHOT_H_
#define EDGE_SNAPSHOT_SYSTEM_SNAPSHOT_H_

#include <string>

#include "edge/common/rng.h"
#include "edge/common/status.h"
#include "edge/core/edge_model.h"
#include "edge/core/train_checkpoint.h"
#include "edge/data/pipeline.h"
#include "edge/data/world.h"
#include "edge/graph/entity_graph.h"
#include "edge/serve/geo_service.h"
#include "edge/text/vocabulary.h"

/// \file
/// Versioned whole-system snapshot (DESIGN.md §13): everything the pipeline
/// needs to reproduce an end-to-end run bit-for-bit — the generative world
/// and its RNG position, the entity vocabulary and co-occurrence graph the
/// training split induced, the trained model's inference checkpoint, the
/// optional in-flight training state, and the serving configuration. A
/// snapshot directory is the unit the scenario harness replays against
/// (snapshot/scenario.h), and the regression net the networked-sharding and
/// streaming-world refactors are verified under.
///
/// On-disk layout (`Save(dir)`): one file per section plus a MANIFEST. Each
/// section is written atomically; the MANIFEST records every section's byte
/// count and FNV-1a checksum and is itself terminated by an `END <fnv1a-hex>`
/// line over its own body. `Load(dir)` verifies the manifest checksum, then
/// every section's size + checksum, then parses each section under the same
/// untrusted-input discipline as EdgeModel::LoadInference: truncations, bit
/// flips, absurd sizes, out-of-range indices and non-finite values all come
/// back as a Status — never an abort, never a partially constructed
/// snapshot.

namespace edge::snapshot {

/// The full captured state. The model travels as its serialized
/// EDGE-INFERENCE v1 stream (validated on load, and exactly what a
/// GeoService consumes); everything else is held as parsed values.
struct SystemSnapshot {
  /// The generative world: enough to rebuild the TweetGenerator, its
  /// gazetteer, and therefore the NER — all pure functions of this config.
  data::WorldConfig world;

  /// Scenario/generator stream position; a replay that should continue
  /// where the capture left off restores this instead of reseeding.
  Rng::State rng;

  /// Training-split entity vocabulary (token -> occurrence count).
  text::Vocabulary vocabulary;

  /// The co-occurrence entity graph with its real edge weights. The
  /// EDGE-INFERENCE stream only carries node names (inference needs no
  /// edges), so this section is what preserves graph structure across a
  /// snapshot/restore cycle.
  graph::EntityGraph graph;

  /// Serialized EDGE-INFERENCE v1 checkpoint (core/edge_model.h).
  std::string model_checkpoint;

  /// Serialized edge-model.v1 binary store at fp64 (core/model_store.h) —
  /// the artifact a serving replica mmap-reloads without an O(model) parse.
  /// Optional ("" = absent) for back-compat with pre-PR-8 snapshots; when
  /// present, Load validates it under the full store gates and cross-checks
  /// its vocabulary against the model section.
  std::string model_store;

  /// Serving configuration the scenario harness replays under.
  serve::GeoServiceOptions serve_options;

  /// Optional in-flight training state (EDGE-TRAINSTATE v1), for snapshots
  /// taken mid-run.
  bool has_train_state = false;
  core::TrainState train_state;
};

/// Captures a snapshot from live components: serializes `model` (which must
/// be fitted), takes its co-occurrence graph, and builds the entity
/// vocabulary from the dataset's training split. The snapshot RNG starts at
/// the world seed's stream head.
Result<SystemSnapshot> CaptureSystemSnapshot(const core::EdgeModel& model,
                                             const data::WorldConfig& world,
                                             const data::ProcessedDataset& dataset,
                                             const serve::GeoServiceOptions& options);

/// Writes every section plus the MANIFEST into `dir` (created if missing).
/// Each file is written atomically (fault point io.snapshot.write).
Status SaveSystemSnapshot(const SystemSnapshot& snapshot, const std::string& dir);

/// Loads and fully validates a snapshot directory (fault point
/// io.snapshot.read). Any corruption — in the manifest, a section's bytes,
/// or a section's content — is a Status error.
Result<SystemSnapshot> LoadSystemSnapshot(const std::string& dir);

/// Section (de)serializers, exposed for targeted corruption tests. Every
/// parser is total over arbitrary bytes: malformed input is a Status.
std::string SerializeWorldConfig(const data::WorldConfig& world);
Result<data::WorldConfig> ParseWorldConfig(const std::string& content);
std::string SerializeVocabulary(const text::Vocabulary& vocabulary);
Result<text::Vocabulary> ParseVocabulary(const std::string& content);
std::string SerializeEntityGraph(const graph::EntityGraph& graph);
Result<graph::EntityGraph> ParseEntityGraph(const std::string& content);
std::string SerializeServeOptions(const serve::GeoServiceOptions& options);
Result<serve::GeoServiceOptions> ParseServeOptions(const std::string& content);

}  // namespace edge::snapshot

#endif  // EDGE_SNAPSHOT_SYSTEM_SNAPSHOT_H_
