#ifndef EDGE_SNAPSHOT_SCENARIO_H_
#define EDGE_SNAPSHOT_SCENARIO_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "edge/common/status.h"
#include "edge/geo/latlon.h"
#include "edge/snapshot/system_snapshot.h"

/// \file
/// Scripted scenario driver over a SystemSnapshot (DESIGN.md §13): a
/// declarative event script — request bursts from the world's tweet pool,
/// flash-crowd entity skew, mid-stream hot reload, injected faults, region
/// outages, traffic spikes — replayed against the snapshot's GeoService,
/// emitting a canonical response stream and its FNV-1a digest.
///
/// Determinism contract: one replay of (snapshot, script) produces a
/// bitwise-identical stream on every run and at every worker/thread budget.
/// The driver gets this by running each event in lockstep — workers paused,
/// every request of the event submitted (so cache-hit and queue-shed
/// decisions depend only on submission order), workers resumed, every future
/// drained in submission order before the next event. Deadlines are forced
/// off (expiry is wall-clock), and the canonical response line omits
/// latency_ms — the one nondeterministic response field. Golden digests
/// checked into tests/golden/ turn any behavioural drift in NER, prediction,
/// caching, shedding or reload into a test failure.
///
/// Script grammar (line-oriented; '#' comments and blank lines ignored):
///   EDGE-SCENARIO v1
///   name <scenario name>
///   seed <u64>                      # optional; default: snapshot RNG state
///   pool <n>                        # world tweets to pre-generate (default 256)
///   event burst <n>                 # n requests sampled from the pool
///   event skew <entity> <n>        # n identical requests naming one entity
///   event text <raw tweet text>     # one hand-written probe request
///   event reload                    # hot-swap the snapshot checkpoint in
///   event fault <EDGE_FAULT_SPEC>   # arm fault injection (e.g. latency)
///   event fault off                 # disarm all fault points
///   event outage <min_lat> <max_lat> <min_lon> <max_lon>
///                                   # region outage: pool sampling avoids box
///   event outage off

namespace edge::snapshot {

/// One scripted event.
struct ScenarioEvent {
  enum class Type { kBurst, kSkew, kText, kReload, kFault, kOutage };
  Type type = Type::kBurst;
  /// kBurst/kSkew: number of requests.
  size_t count = 0;
  /// kSkew: canonical entity name (underscores; rendered with spaces).
  std::string entity;
  /// kText: raw request text. kFault: the spec ("" = disarm).
  std::string text;
  /// kOutage: the dead region; `off` true means "lift the outage".
  geo::BoundingBox outage;
  bool off = false;
};

/// A parsed scenario script.
struct Scenario {
  std::string name;
  bool has_seed = false;
  uint64_t seed = 0;
  size_t pool_tweets = 256;
  std::vector<ScenarioEvent> events;
};

/// Parses a script (grammar above). Malformed scripts are a Status, never an
/// abort: unknown directives, bad counts, and missing fields all report the
/// offending line.
Result<Scenario> ParseScenario(const std::string& content);

/// Replay knobs. Worker/thread overrides exist so the digest-invariance
/// tests can replay one snapshot at several budgets.
struct ScenarioRunOptions {
  /// Overrides snapshot serve_options.num_workers when > 0.
  size_t num_workers = 0;
  /// Overrides snapshot serve_options.predict_threads when >= 0.
  int predict_threads = -1;
  /// When set, every canonical stream line is also written here (with
  /// trailing newlines) as it is produced.
  std::ostream* out = nullptr;
};

/// A finished replay: the canonical stream, its digest, and tallies.
struct ScenarioResult {
  std::vector<std::string> lines;
  /// FNV-1a 64 over every line + '\n', as 16 lowercase hex digits.
  std::string digest;
  size_t requests = 0;
  size_t cache_hits = 0;
  size_t shed = 0;
};

/// Replays `scenario` against `snapshot` under the determinism contract
/// above. Fault points configured by the script are disarmed on every exit
/// path. Errors (unservable snapshot, unknown fault spec, an outage covering
/// the whole pool) come back as a Status.
Result<ScenarioResult> RunScenario(const SystemSnapshot& snapshot,
                                   const Scenario& scenario,
                                   const ScenarioRunOptions& options = {});

/// One checked-in golden replay record (tests/golden/*.golden): the digest a
/// scenario produced, pinned to the build fingerprint it was recorded under.
struct GoldenRecord {
  std::string scenario;     ///< Scenario name the digest belongs to.
  std::string fingerprint;  ///< BuildFingerprint() at record time.
  std::string digest;       ///< ScenarioResult::digest.
  size_t requests = 0;      ///< Request count, as a drift tripwire.
};

/// Reads/writes the golden file format ("EDGE-GOLDEN v1" + key-value lines).
/// Malformed files are a Status.
Result<GoldenRecord> ReadGoldenFile(const std::string& path);
Status WriteGoldenFile(const std::string& path, const GoldenRecord& record);

/// Fingerprint of everything that can legitimately change this build's
/// float results without a code bug: compiler, libm transcendentals, the
/// PCG32 stream, and a projection round-trip. Golden digests are compared
/// only between equal fingerprints (run-to-run and cross-thread-budget
/// identity is asserted unconditionally); a golden recorded under a
/// different toolchain is reported as skipped, not failed.
std::string BuildFingerprint();

}  // namespace edge::snapshot

#endif  // EDGE_SNAPSHOT_SCENARIO_H_
