#include "edge/net/line_framer.h"

#include <cstring>

namespace edge::net {

void LineFramer::Append(const char* data, size_t n) {
  // Compact lazily: only when the dead prefix dominates the buffer, so the
  // steady state (many small lines) stays amortized O(bytes).
  if (head_ > 0 && (head_ >= buffer_.size() || head_ > (64u << 10))) {
    buffer_.erase(0, head_);
    head_ = 0;
  }
  buffer_.append(data, n);
}

LineFramer::Event LineFramer::Next(std::string* line) {
  if (discarding_) {
    // Drop the remainder of an oversized line through its terminator.
    const void* nl = std::memchr(buffer_.data() + head_, '\n', buffer_.size() - head_);
    if (nl == nullptr) {
      head_ = buffer_.size();
      scanned_ = 0;
      return Event::kNeedMore;
    }
    head_ = static_cast<size_t>(static_cast<const char*>(nl) - buffer_.data()) + 1;
    scanned_ = 0;
    discarding_ = false;
    return Next(line);
  }

  const size_t unscanned = head_ + scanned_;
  const void* nl = unscanned < buffer_.size()
                       ? std::memchr(buffer_.data() + unscanned, '\n',
                                     buffer_.size() - unscanned)
                       : nullptr;
  if (nl == nullptr) {
    scanned_ = buffer_.size() - head_;
    // +1 leaves room for a trailing '\r' that would be stripped once the
    // '\n' arrives; a line of exactly max bytes + CRLF must not trip this.
    if (scanned_ > max_line_bytes_ + 1) {
      // The line is already too long and its terminator has not even
      // arrived: reject now and drop bytes until it does.
      head_ = buffer_.size();
      scanned_ = 0;
      discarding_ = true;
      return Event::kOversized;
    }
    return Event::kNeedMore;
  }

  const size_t end = static_cast<size_t>(static_cast<const char*>(nl) - buffer_.data());
  size_t len = end - head_;
  // CRLF tolerance: strip one trailing '\r' before anything else — it is
  // part of the terminator, so it neither reaches the payload nor counts
  // against the length cap.
  if (len > 0 && buffer_[head_ + len - 1] == '\r') --len;
  if (len > max_line_bytes_) {
    head_ = end + 1;
    scanned_ = 0;
    return Event::kOversized;
  }
  line->assign(buffer_, head_, len);
  head_ = end + 1;
  scanned_ = 0;
  return Event::kLine;
}

}  // namespace edge::net
