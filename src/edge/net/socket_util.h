#ifndef EDGE_NET_SOCKET_UTIL_H_
#define EDGE_NET_SOCKET_UTIL_H_

#include <cstdint>
#include <string>

#include "edge/common/status.h"

/// \file
/// Thin POSIX TCP helpers for the serving tier: create a listener, dial a
/// peer, flip a descriptor non-blocking. Everything returns Status — socket
/// setup failures (port in use, peer down) are operational conditions, not
/// invariant violations.

namespace edge::net {

/// "host:port" -> (host, port). Returns InvalidArgument on a missing or
/// malformed port.
Status SplitHostPort(const std::string& address, std::string* host,
                     uint16_t* port);

/// Creates a bound, listening, non-blocking TCP socket (SO_REUSEADDR).
/// `port` 0 binds an ephemeral port; *bound_port always receives the actual
/// one. Returns the listening fd.
Result<int> ListenTcp(const std::string& host, uint16_t port,
                      uint16_t* bound_port);

/// Connect to host:port; the returned fd is already non-blocking.
/// `timeout_ms` bounds the connect itself: < 0 blocks indefinitely (legacy
/// behaviour), >= 0 fails with Internal("connect ... timed out") once the
/// deadline passes — an unroutable peer can no longer hang the caller.
Result<int> ConnectTcp(const std::string& host, uint16_t port,
                       int timeout_ms = -1);

/// Begins a non-blocking connect and returns the fd immediately — the
/// connect is usually still in flight (EINPROGRESS). Poll the fd for
/// writability, then call CheckConnect to learn the outcome. The event-loop
/// counterpart of ConnectTcp: a redial never stalls the loop.
Result<int> StartConnectTcp(const std::string& host, uint16_t port);

/// Outcome of an in-flight StartConnectTcp dial: kPending while the connect
/// has neither succeeded nor failed yet.
enum class ConnectProgress { kPending, kConnected, kFailed };

/// Non-blocking check on a StartConnectTcp fd (0-timeout poll + SO_ERROR).
/// On kConnected the fd is ready for traffic (TCP_NODELAY applied); on
/// kFailed the caller owns closing the fd.
ConnectProgress CheckConnect(int fd);

/// O_NONBLOCK on an existing descriptor.
Status SetNonBlocking(int fd);

/// close() that ignores EINTR (retrying close is not portable).
void CloseFd(int fd);

}  // namespace edge::net

#endif  // EDGE_NET_SOCKET_UTIL_H_
