#ifndef EDGE_NET_SOCKET_UTIL_H_
#define EDGE_NET_SOCKET_UTIL_H_

#include <cstdint>
#include <string>

#include "edge/common/status.h"

/// \file
/// Thin POSIX TCP helpers for the serving tier: create a listener, dial a
/// peer, flip a descriptor non-blocking. Everything returns Status — socket
/// setup failures (port in use, peer down) are operational conditions, not
/// invariant violations.

namespace edge::net {

/// "host:port" -> (host, port). Returns InvalidArgument on a missing or
/// malformed port.
Status SplitHostPort(const std::string& address, std::string* host,
                     uint16_t* port);

/// Creates a bound, listening, non-blocking TCP socket (SO_REUSEADDR).
/// `port` 0 binds an ephemeral port; *bound_port always receives the actual
/// one. Returns the listening fd.
Result<int> ListenTcp(const std::string& host, uint16_t port,
                      uint16_t* bound_port);

/// Blocking connect to host:port; the returned fd is already non-blocking.
Result<int> ConnectTcp(const std::string& host, uint16_t port);

/// O_NONBLOCK on an existing descriptor.
Status SetNonBlocking(int fd);

/// close() that ignores EINTR (retrying close is not portable).
void CloseFd(int fd);

}  // namespace edge::net

#endif  // EDGE_NET_SOCKET_UTIL_H_
