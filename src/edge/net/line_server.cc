#include "edge/net/line_server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

#include "edge/common/check.h"
#include "edge/net/socket_util.h"

namespace edge::net {

Result<std::unique_ptr<LineServer>> LineServer::Listen(const Options& options,
                                                       Callbacks callbacks) {
  if (!callbacks.on_line) {
    return Status::InvalidArgument("LineServer needs an on_line callback");
  }
  if (options.write_low_watermark > options.write_high_watermark) {
    return Status::InvalidArgument("write_low_watermark above high watermark");
  }
  uint16_t bound = 0;
  Result<int> fd = ListenTcp(options.host, options.port, &bound);
  if (!fd.ok()) return fd.status();
  return std::unique_ptr<LineServer>(
      new LineServer(fd.value(), bound, options, std::move(callbacks)));
}

LineServer::LineServer(int listen_fd, uint16_t port, const Options& options,
                       Callbacks callbacks)
    : listen_fd_(listen_fd),
      port_(port),
      options_(options),
      callbacks_(std::move(callbacks)) {}

LineServer::~LineServer() {
  for (auto& [id, conn] : conns_) CloseFd(conn.fd);
  CloseFd(listen_fd_);
}

LineServer::ConnId LineServer::Adopt(int fd, size_t max_line_bytes) {
  ConnId id = next_id_++;
  conns_.emplace(id, Conn(fd, max_line_bytes > 0 ? max_line_bytes
                                                 : options_.max_line_bytes));
  return id;
}

bool LineServer::Send(ConnId id, std::string_view line) {
  auto it = conns_.find(id);
  if (it == conns_.end() || it->second.closing) return false;
  Conn& conn = it->second;
  conn.out.append(line);
  conn.out.push_back('\n');
  // Opportunistic flush: when the loop is otherwise idle this saves a full
  // poll round-trip of response latency.
  FlushWrites(id);
  return true;
}

void LineServer::PauseReading(ConnId id) {
  auto it = conns_.find(id);
  if (it != conns_.end()) it->second.manual_paused = true;
}

void LineServer::ResumeReading(ConnId id) {
  auto it = conns_.find(id);
  if (it == conns_.end() || !it->second.manual_paused) return;
  it->second.manual_paused = false;
  // Lines framed while paused are delivered now, not at the next read.
  DispatchFrames(id);
}

void LineServer::Close(ConnId id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  it->second.closing = true;
  if (it->second.out_head >= it->second.out.size()) {
    Teardown(id);
  } else {
    FlushWrites(id);
  }
}

void LineServer::CloseNow(ConnId id) {
  if (conns_.count(id) > 0) Teardown(id);
}

size_t LineServer::write_buffered(ConnId id) const {
  auto it = conns_.find(id);
  return it == conns_.end() ? 0 : it->second.out.size() - it->second.out_head;
}

void LineServer::StopAccepting() {
  if (listen_fd_ >= 0) {
    CloseFd(listen_fd_);
    listen_fd_ = -1;
  }
}

bool LineServer::idle() const {
  for (const auto& [id, conn] : conns_) {
    if (conn.out_head < conn.out.size()) return false;
  }
  return true;
}

void LineServer::RunOnce(int timeout_ms) {
  // Snapshot ids alongside the pollfd set: callbacks may open/close
  // connections mid-dispatch, so every access below re-finds by id.
  std::vector<pollfd> fds;
  std::vector<ConnId> ids;
  fds.reserve(conns_.size() + 1);
  ids.reserve(conns_.size() + 1);
  if (listen_fd_ >= 0) {
    fds.push_back({listen_fd_, POLLIN, 0});
    ids.push_back(0);
  }
  for (const auto& [id, conn] : conns_) {
    short events = 0;
    if (read_enabled(conn)) events |= POLLIN;
    if (conn.out_head < conn.out.size()) events |= POLLOUT;
    fds.push_back({conn.fd, events, 0});
    ids.push_back(id);
  }

  int ready = ::poll(fds.data(), fds.size(), timeout_ms);
  if (ready <= 0) return;  // Timeout or EINTR (signal flags get checked by the caller).

  for (size_t i = 0; i < fds.size(); ++i) {
    if (fds[i].revents == 0) continue;
    if (ids[i] == 0) {
      AcceptPending();
      continue;
    }
    ConnId id = ids[i];
    if (conns_.count(id) == 0) continue;  // A callback closed it already.
    if (fds[i].revents & (POLLERR | POLLNVAL)) {
      Teardown(id);
      continue;
    }
    if (fds[i].revents & POLLOUT) FlushWrites(id);
    if (conns_.count(id) == 0) continue;
    if (fds[i].revents & (POLLIN | POLLHUP)) HandleReadable(id);
  }
}

void LineServer::AcceptPending() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or a transient accept error: try again next poll.
    }
    if (conns_.size() >= options_.max_connections) {
      CloseFd(fd);
      continue;
    }
    if (!SetNonBlocking(fd).ok()) {
      CloseFd(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    ConnId id = next_id_++;
    conns_.emplace(id, Conn(fd, options_.max_line_bytes));
    if (callbacks_.on_open) callbacks_.on_open(id);
  }
}

void LineServer::HandleReadable(ConnId id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Conn& conn = it->second;
  char buf[64 << 10];
  for (;;) {
    ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn.framer.Append(buf, static_cast<size_t>(n));
      // Cap one connection's share of a RunOnce: dispatch what arrived, let
      // poll() fairness interleave the rest with other connections.
      if (static_cast<size_t>(n) < sizeof(buf)) break;
      continue;
    }
    if (n == 0) {
      conn.rd_eof = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    Teardown(id);  // ECONNRESET and friends.
    return;
  }
  DispatchFrames(id);
}

void LineServer::DispatchFrames(ConnId id) {
  for (;;) {
    auto it = conns_.find(id);
    if (it == conns_.end()) return;  // A callback closed the connection.
    Conn& conn = it->second;
    // Caller-paused or write-backpressured connections keep their framed
    // lines buffered: delivery resumes from ResumeReading / the next drain.
    if (conn.manual_paused || conn.auto_paused || conn.closing) return;
    std::string line;
    LineFramer::Event event = conn.framer.Next(&line);
    if (event == LineFramer::Event::kLine) {
      callbacks_.on_line(id, std::move(line));
      continue;
    }
    if (event == LineFramer::Event::kOversized) {
      if (callbacks_.on_oversized) callbacks_.on_oversized(id);
      continue;
    }
    break;  // kNeedMore.
  }
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Conn& conn = it->second;
  if (conn.rd_eof && !conn.eof_notified && conn.framer.buffered() == 0) {
    conn.eof_notified = true;
    if (callbacks_.on_eof) {
      callbacks_.on_eof(id);
    } else {
      Close(id);
    }
  }
}

void LineServer::FlushWrites(ConnId id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Conn& conn = it->second;
  while (conn.out_head < conn.out.size()) {
    ssize_t n = ::send(conn.fd, conn.out.data() + conn.out_head,
                       conn.out.size() - conn.out_head, MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_head += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    Teardown(id);
    return;
  }
  if (conn.out_head >= conn.out.size()) {
    conn.out.clear();
    conn.out_head = 0;
    if (conn.closing) {
      Teardown(id);
      return;
    }
  } else if (conn.out_head > (1u << 20)) {
    conn.out.erase(0, conn.out_head);
    conn.out_head = 0;
  }

  // Write-side backpressure drives read-side throttling.
  const size_t buffered = conn.out.size() - conn.out_head;
  if (!conn.auto_paused && buffered > options_.write_high_watermark) {
    conn.auto_paused = true;
  } else if (conn.auto_paused && buffered <= options_.write_low_watermark) {
    conn.auto_paused = false;
    DispatchFrames(id);
  }
}

void LineServer::Teardown(ConnId id) {
  auto it = conns_.find(id);
  EDGE_CHECK(it != conns_.end());
  CloseFd(it->second.fd);
  conns_.erase(it);
  if (callbacks_.on_close) callbacks_.on_close(id);
}

}  // namespace edge::net
