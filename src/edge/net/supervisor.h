#ifndef EDGE_NET_SUPERVISOR_H_
#define EDGE_NET_SUPERVISOR_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "edge/common/status.h"

/// \file
/// Self-healing fleet components for the serving tier (DESIGN.md §17): the
/// deterministic redial backoff schedule, the per-replica health state
/// machine that gates ring readmission on consecutive clean probes, the
/// flap-detecting circuit breaker, and the `--fleet` config / child-process
/// helpers the router's supervised mode is built from.
///
/// Everything here is pure logic over a caller-supplied clock (seconds as a
/// double, monotonic) — no sockets, no threads, no wall time — so the whole
/// healing state machine is unit-testable and every chaos drill is
/// replayable: the jitter stream is the same seeded xorshift64* generator
/// the fault layer uses (edge/fault), so a fixed seed yields a fixed redial
/// schedule.

namespace edge::net {

/// Capped exponential backoff with deterministic jitter. Delay for attempt
/// k is min(base * multiplier^k, max) * (1 - jitter + jitter * U) with U
/// drawn from a seeded xorshift64* stream (the edge/fault generator), so two
/// supervisors with the same seed produce bitwise-identical schedules.
class BackoffPolicy {
 public:
  struct Options {
    double base_ms = 100.0;    ///< First-retry delay.
    double max_ms = 5000.0;    ///< Cap on the exponential growth.
    double multiplier = 2.0;   ///< Growth factor per consecutive failure.
    double jitter = 0.25;      ///< Fraction of the delay randomized, [0, 1].
  };

  BackoffPolicy(const Options& options, uint64_t seed);

  /// Delay before the next dial attempt; consecutive calls without Reset()
  /// walk the exponential ladder (attempt 0, 1, 2, ...).
  double NextDelayMs();

  /// Back to attempt 0 (a replica was successfully readmitted). The jitter
  /// stream is NOT rewound — determinism is per call sequence, not per reset.
  void Reset();

  int attempt() const { return attempt_; }

 private:
  Options options_;
  uint64_t rng_state_;
  int attempt_ = 0;
};

/// Sliding-window death counter: Trips() when `max_deaths` deaths landed
/// within the trailing `window_seconds`. The window is evaluated lazily at
/// RecordDeath time against the caller's clock.
class FlapDetector {
 public:
  FlapDetector(int max_deaths, double window_seconds)
      : max_deaths_(max_deaths), window_seconds_(window_seconds) {}

  /// Records a death at `now`; returns true when this death trips the
  /// breaker (>= max_deaths within the window, max_deaths > 0).
  bool RecordDeath(double now);

  int deaths_in_window(double now) const;

 private:
  int max_deaths_;
  double window_seconds_;
  std::deque<double> deaths_;
};

/// Per-replica health state (DESIGN.md §17 state machine).
enum class ReplicaHealth {
  kUp,           ///< In the ring, taking traffic.
  kConnecting,   ///< A dial is in flight.
  kBackoff,      ///< Down; waiting out the redial delay.
  kProbation,    ///< Connected but not readmitted: probes must pass first.
  kQuarantined,  ///< Circuit breaker tripped; no dialing until cooldown ends.
};

/// "up" / "connecting" / "backoff" / "probation" / "quarantined".
const char* ReplicaHealthName(ReplicaHealth state);

/// The healing state machine for one replica. The owner (the router) feeds
/// it events — connection established/lost, probe outcomes, dial failures —
/// and asks it two questions each loop tick: ShouldDial(now)? and
/// TakesTraffic()? All timing flows through the injected `now`, so tests
/// drive it with a fake clock and the schedule is deterministic.
///
/// Transitions:
///   kUp         --OnDown-->                 kBackoff | kQuarantined (flap)
///   kBackoff    --ShouldDial/OnDialStart--> kConnecting
///   kConnecting --OnConnected-->            kProbation (streak = 0)
///   kConnecting --OnDown (dial failed)-->   kBackoff (attempt++)
///   kProbation  --OnProbeOk x N-->          kUp (backoff reset)
///   kProbation  --OnProbeFail | OnDown-->   kBackoff | kQuarantined (flap)
///   kQuarantined --cooldown elapsed-->      kBackoff (one fresh chance)
///
/// Deaths (transitions out of kUp/kProbation on failure) feed the flap
/// detector; dial failures only climb the backoff ladder — an unreachable
/// address redials forever at the capped rate without ever tripping the
/// breaker, which is the desired behaviour for a replica that is merely
/// still booting.
class ReplicaSupervisor {
 public:
  struct Options {
    BackoffPolicy::Options backoff;
    /// Consecutive clean probe replies required to readmit from probation.
    int readmit_probes = 2;
    /// Circuit breaker: this many deaths within flap_window_seconds
    /// quarantines the replica. 0 disables the breaker.
    int flap_max_deaths = 5;
    double flap_window_seconds = 30.0;
    /// Quarantine cooldown before the replica may dial again.
    double quarantine_seconds = 30.0;
  };

  /// `seed` fixes the jitter stream (the router hashes the replica address).
  ReplicaSupervisor(const Options& options, uint64_t seed, double now,
                    ReplicaHealth initial = ReplicaHealth::kUp);

  // --- events --------------------------------------------------------------

  /// The connection is established (dial completed): enter probation.
  void OnConnected(double now);
  /// The connection dropped, the dial failed or timed out, or the process
  /// died. From kUp/kProbation this is a death (feeds the breaker); from
  /// kConnecting it is a dial failure (climbs the backoff ladder only).
  void OnDown(double now);
  /// A clean probe reply while in probation (or up — resets nothing there).
  void OnProbeOk(double now);
  /// A probe timed out or came back malformed. In probation/up this is
  /// treated as a death: the caller should also drop the connection.
  void OnProbeFail(double now);
  /// The caller started a dial (after ShouldDial returned true).
  void OnDialStart(double now);

  // --- decisions -----------------------------------------------------------

  /// True when the owner should start a dial attempt now: the replica is in
  /// backoff past its redial deadline, or its quarantine cooldown elapsed
  /// (which first moves it to kBackoff with a zero deadline).
  bool ShouldDial(double now);

  /// True when the replica may take traffic (kUp).
  bool TakesTraffic() const { return state_ == ReplicaHealth::kUp; }
  /// True when the replica should receive health probes (kUp | kProbation).
  bool WantsProbes() const {
    return state_ == ReplicaHealth::kUp || state_ == ReplicaHealth::kProbation;
  }

  // --- observability -------------------------------------------------------

  ReplicaHealth state() const { return state_; }
  const char* state_name() const { return ReplicaHealthName(state_); }
  uint64_t redials() const { return redials_; }
  uint64_t deaths() const { return deaths_; }
  uint64_t breaker_trips() const { return breaker_trips_; }
  int probe_streak() const { return probe_streak_; }
  /// Seconds since the last state transition.
  double SinceTransition(double now) const { return now - last_transition_; }
  /// Human-readable breaker reason; empty unless quarantined at least once.
  const std::string& quarantine_reason() const { return quarantine_reason_; }

 private:
  void Transition(ReplicaHealth next, double now);
  /// Shared death path: breaker bookkeeping, then backoff or quarantine.
  void RecordDeath(double now);
  void EnterBackoff(double now);

  Options options_;
  BackoffPolicy backoff_;
  FlapDetector flap_;
  ReplicaHealth state_;
  double last_transition_;
  double next_dial_ = 0.0;         ///< Redial deadline while in kBackoff.
  double quarantine_until_ = 0.0;  ///< Cooldown deadline while quarantined.
  int probe_streak_ = 0;
  uint64_t redials_ = 0;
  uint64_t deaths_ = 0;
  uint64_t breaker_trips_ = 0;
  std::string quarantine_reason_;
};

// --- supervised fleets (--fleet CONFIG) ------------------------------------

/// One replica of a supervised fleet: the address the router dials plus the
/// argv the router spawns (and respawns) it from.
struct FleetReplicaSpec {
  std::string addr;                ///< host:port, must match the argv's bind.
  std::vector<std::string> argv;   ///< argv[0] = binary path.
};

struct FleetConfig {
  std::vector<FleetReplicaSpec> replicas;
};

/// Parses a fleet config. Line grammar (whitespace-separated, '#' comments):
///
///   replica <host:port> <binary> [arg...]
///
/// Every replica line needs a routable fixed-port address and a non-empty
/// argv; duplicates addresses are rejected. Tokens are split on whitespace —
/// no quoting — so paths with spaces are unsupported by design.
Result<FleetConfig> ParseFleetConfig(const std::string& text);

/// ParseFleetConfig over a file's contents.
Result<FleetConfig> LoadFleetConfig(const std::string& path);

/// fork/execs `argv` with stdio inherited and every descriptor >= 3 closed
/// in the child (the router's listen socket and replica links must not leak
/// into replicas). Returns the child pid.
Result<int> SpawnProcess(const std::vector<std::string>& argv);

/// Non-blocking reap: true when `pid` has exited (WNOHANG); *exit_code gets
/// the exit status or -signal for a signal death.
bool ReapProcess(int pid, int* exit_code);

/// SIGTERM (force=false) or SIGKILL (force=true).
void TerminateProcess(int pid, bool force);

}  // namespace edge::net

#endif  // EDGE_NET_SUPERVISOR_H_
