#ifndef EDGE_NET_LINE_FRAMER_H_
#define EDGE_NET_LINE_FRAMER_H_

#include <cstddef>
#include <string>

/// \file
/// Incremental LDJSON line framing for the socket serving tier.
///
/// TCP is a byte stream: one read() may deliver half a request, three
/// requests, or a request plus the first bytes of the next. LineFramer
/// re-frames the stream into newline-terminated lines:
///
///   - partial lines buffer across reads until their '\n' arrives;
///   - several complete lines in one read come back as several events;
///   - a trailing "\r" (CRLF clients: telnet, curl, Windows tooling) is
///     stripped from the payload;
///   - a line exceeding max_line_bytes is rejected as one kOversized event
///     and its bytes are discarded through the terminating '\n', so a
///     misbehaving client can neither balloon server memory nor desync the
///     one-response-per-line contract.

namespace edge::net {

class LineFramer {
 public:
  /// Default per-line cap. Tweets are ~10^2 bytes; 1 MiB leaves three orders
  /// of magnitude of headroom while bounding per-connection buffering.
  static constexpr size_t kDefaultMaxLineBytes = 1 << 20;

  enum class Event {
    kNeedMore,   ///< No complete line buffered; feed more bytes.
    kLine,       ///< *line holds the next complete line (terminator stripped).
    kOversized,  ///< Next line exceeded max_line_bytes; its bytes are dropped.
  };

  explicit LineFramer(size_t max_line_bytes = kDefaultMaxLineBytes)
      : max_line_bytes_(max_line_bytes) {}

  /// Buffers `n` raw stream bytes.
  void Append(const char* data, size_t n);

  /// Pops the next framing event. Call until kNeedMore after every Append.
  Event Next(std::string* line);

  /// Bytes buffered and not yet returned (diagnostics).
  size_t buffered() const { return buffer_.size() - head_; }

  size_t max_line_bytes() const { return max_line_bytes_; }

 private:
  std::string buffer_;
  size_t head_ = 0;       ///< Start of the unconsumed region in buffer_.
  size_t scanned_ = 0;    ///< Bytes past head_ already scanned for '\n'.
  bool discarding_ = false;  ///< Inside an oversized line, dropping bytes.
  size_t max_line_bytes_;
};

}  // namespace edge::net

#endif  // EDGE_NET_LINE_FRAMER_H_
