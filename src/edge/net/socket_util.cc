#include "edge/net/socket_util.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace edge::net {

namespace {

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

/// Fills a sockaddr_in for `host` (dotted quad; "" = INADDR_ANY).
Status MakeAddr(const std::string& host, uint16_t port, sockaddr_in* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(port);
  if (host.empty()) {
    addr->sin_addr.s_addr = htonl(INADDR_ANY);
    return Status::Ok();
  }
  if (inet_pton(AF_INET, host.c_str(), &addr->sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  return Status::Ok();
}

}  // namespace

Status SplitHostPort(const std::string& address, std::string* host,
                     uint16_t* port) {
  size_t colon = address.rfind(':');
  if (colon == std::string::npos || colon + 1 >= address.size()) {
    return Status::InvalidArgument("expected host:port, got '" + address + "'");
  }
  *host = address.substr(0, colon);
  const std::string port_text = address.substr(colon + 1);
  long value = 0;
  for (char c : port_text) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("bad port in '" + address + "'");
    }
    value = value * 10 + (c - '0');
    if (value > 65535) {
      return Status::InvalidArgument("port out of range in '" + address + "'");
    }
  }
  if (value == 0) return Status::InvalidArgument("port 0 in '" + address + "'");
  *port = static_cast<uint16_t>(value);
  return Status::Ok();
}

Result<int> ListenTcp(const std::string& host, uint16_t port,
                      uint16_t* bound_port) {
  sockaddr_in addr;
  Status status = MakeAddr(host, port, &addr);
  if (!status.ok()) return status;

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal(Errno("socket"));
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status error = Status::Internal(Errno("bind " + host + ":" + std::to_string(port)));
    CloseFd(fd);
    return error;
  }
  if (::listen(fd, SOMAXCONN) != 0) {
    Status error = Status::Internal(Errno("listen"));
    CloseFd(fd);
    return error;
  }
  if (bound_port != nullptr) {
    sockaddr_in actual;
    socklen_t len = sizeof(actual);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&actual), &len) != 0) {
      Status error = Status::Internal(Errno("getsockname"));
      CloseFd(fd);
      return error;
    }
    *bound_port = ntohs(actual.sin_port);
  }
  status = SetNonBlocking(fd);
  if (!status.ok()) {
    CloseFd(fd);
    return status;
  }
  return fd;
}

namespace {

/// Request lines are latency-sensitive and tiny; never Nagle-delay them.
void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

Result<int> ConnectTcp(const std::string& host, uint16_t port,
                       int timeout_ms) {
  Result<int> started = StartConnectTcp(host, port);
  if (!started.ok()) return started;
  int fd = started.value();

  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = POLLOUT;
  for (;;) {
    int rc = ::poll(&pfd, 1, timeout_ms < 0 ? -1 : timeout_ms);
    if (rc < 0 && errno == EINTR) continue;
    if (rc < 0) {
      Status error = Status::Internal(Errno("poll"));
      CloseFd(fd);
      return error;
    }
    if (rc == 0) {
      CloseFd(fd);
      return Status::Internal("connect " + host + ":" + std::to_string(port) +
                              " timed out after " + std::to_string(timeout_ms) +
                              "ms");
    }
    break;
  }
  if (CheckConnect(fd) != ConnectProgress::kConnected) {
    Status error = Status::Internal(
        Errno("connect " + host + ":" + std::to_string(port)));
    CloseFd(fd);
    return error;
  }
  return fd;
}

Result<int> StartConnectTcp(const std::string& host, uint16_t port) {
  sockaddr_in addr;
  Status status = MakeAddr(host.empty() ? "127.0.0.1" : host, port, &addr);
  if (!status.ok()) return status;
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal(Errno("socket"));
  status = SetNonBlocking(fd);
  if (!status.ok()) {
    CloseFd(fd);
    return status;
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0 && errno != EINPROGRESS) {
    Status error = Status::Internal(
        Errno("connect " + host + ":" + std::to_string(port)));
    CloseFd(fd);
    return error;
  }
  return fd;
}

ConnectProgress CheckConnect(int fd) {
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = POLLOUT;
  int rc = ::poll(&pfd, 1, 0);
  if (rc == 0) return ConnectProgress::kPending;
  if (rc < 0) return errno == EINTR ? ConnectProgress::kPending
                                    : ConnectProgress::kFailed;
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
    return ConnectProgress::kFailed;
  }
  SetNoDelay(fd);
  return ConnectProgress::kConnected;
}

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Status::Internal(Errno("fcntl(F_GETFL)"));
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    return Status::Internal(Errno("fcntl(F_SETFL)"));
  }
  return Status::Ok();
}

void CloseFd(int fd) {
  if (fd >= 0) ::close(fd);
}

}  // namespace edge::net
