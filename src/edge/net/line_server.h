#ifndef EDGE_NET_LINE_SERVER_H_
#define EDGE_NET_LINE_SERVER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "edge/common/status.h"
#include "edge/net/line_framer.h"

/// \file
/// Single-threaded poll() event loop speaking newline-delimited text over
/// many concurrent TCP connections — the socket front-end of the serving
/// tier (DESIGN.md §16).
///
/// The loop owns accept, per-connection LineFramer re-framing (partial
/// lines across reads, CRLF tolerance, oversized-line rejection) and
/// buffered non-blocking writes with backpressure: a connection whose
/// outbound buffer crosses `write_high_watermark` stops being read until
/// the peer drains it below `write_low_watermark`, so one slow consumer
/// can neither balloon server memory nor stall the other connections.
/// Callers can additionally pause reading per connection (admission
/// backpressure) — already-framed lines are then held undelivered until
/// ResumeReading.
///
/// Everything runs on the caller's thread inside RunOnce(): callbacks may
/// freely Send/Pause/Close any connection. The loop never blocks on a
/// peer; RunOnce blocks at most `timeout_ms` in poll().

namespace edge::net {

class LineServer {
 public:
  using ConnId = uint64_t;

  struct Options {
    /// Listen address; "" binds INADDR_ANY.
    std::string host = "127.0.0.1";
    /// 0 = ephemeral; see port() for the bound one.
    uint16_t port = 0;
    size_t max_line_bytes = LineFramer::kDefaultMaxLineBytes;
    /// Outbound-buffer watermarks driving per-connection read backpressure.
    size_t write_high_watermark = 4u << 20;
    size_t write_low_watermark = 256u << 10;
    /// Accepted connections beyond this are closed immediately.
    size_t max_connections = 1024;
  };

  struct Callbacks {
    /// A connection was accepted (not fired for Adopt()ed descriptors).
    std::function<void(ConnId)> on_open;
    /// One complete line (terminator stripped). Required.
    std::function<void(ConnId, std::string&&)> on_line;
    /// The next line exceeded max_line_bytes and was discarded; the callee
    /// usually Send()s a structured error so the one-answer-per-line
    /// contract survives.
    std::function<void(ConnId)> on_oversized;
    /// Peer half-closed its write side; every buffered line has already been
    /// delivered. Typical reaction: finish in-flight work, then Close(id).
    /// When unset the server Close()s the connection itself.
    std::function<void(ConnId)> on_eof;
    /// The connection is gone (peer reset, write error, or a Close that
    /// finished flushing). The id is dead after this returns.
    std::function<void(ConnId)> on_close;
  };

  /// Binds and listens; no traffic flows until RunOnce() is called.
  static Result<std::unique_ptr<LineServer>> Listen(const Options& options,
                                                    Callbacks callbacks);
  ~LineServer();

  LineServer(const LineServer&) = delete;
  LineServer& operator=(const LineServer&) = delete;

  /// The bound listen port (== options.port unless that was 0).
  uint16_t port() const { return port_; }

  /// Adds an already-connected non-blocking descriptor (an outbound dial,
  /// e.g. a router's replica link) to the loop. It gets the same framing
  /// and backpressure treatment as an accepted connection. A nonzero
  /// `max_line_bytes` overrides the server-wide cap for this connection
  /// (replica replies dwarf client requests).
  ConnId Adopt(int fd, size_t max_line_bytes = 0);

  /// Queues `line` + '\n' for delivery; returns false if the id is dead.
  bool Send(ConnId id, std::string_view line);

  /// Caller-driven read backpressure (e.g. per-connection in-flight caps).
  void PauseReading(ConnId id);
  /// Re-enables reading and delivers any lines framed while paused.
  void ResumeReading(ConnId id);

  /// Graceful close: pending writes flush first, then on_close fires.
  void Close(ConnId id);
  /// Immediate teardown (pending writes are dropped).
  void CloseNow(ConnId id);

  bool IsOpen(ConnId id) const { return conns_.count(id) > 0; }
  size_t write_buffered(ConnId id) const;
  size_t connection_count() const { return conns_.size(); }

  /// Stops accepting new connections (drain mode); existing ones live on.
  void StopAccepting();

  /// True when no connection has pending outbound bytes.
  bool idle() const;

  /// One poll() iteration: accepts, reads/frames/dispatches, flushes writes.
  /// Blocks at most timeout_ms waiting for events.
  void RunOnce(int timeout_ms);

 private:
  struct Conn {
    int fd = -1;
    LineFramer framer;
    std::string out;        ///< Pending outbound bytes.
    size_t out_head = 0;    ///< Consumed prefix of `out`.
    bool manual_paused = false;
    bool auto_paused = false;  ///< Outbound buffer above the high watermark.
    bool rd_eof = false;
    bool eof_notified = false;
    bool closing = false;  ///< Close() requested: flush, then tear down.
    Conn(int fd_in, size_t max_line) : fd(fd_in), framer(max_line) {}
  };

  LineServer(int listen_fd, uint16_t port, const Options& options,
             Callbacks callbacks);

  bool read_enabled(const Conn& conn) const {
    return !conn.manual_paused && !conn.auto_paused && !conn.rd_eof &&
           !conn.closing;
  }
  void AcceptPending();
  /// Reads until EAGAIN/EOF and dispatches framed lines.
  void HandleReadable(ConnId id);
  /// Delivers framed lines while reading stays enabled; fires on_eof when
  /// the stream is exhausted after a peer half-close.
  void DispatchFrames(ConnId id);
  /// Writes until EAGAIN; completes a graceful Close; updates auto pause.
  void FlushWrites(ConnId id);
  void Teardown(ConnId id);

  int listen_fd_;
  uint16_t port_;
  Options options_;
  Callbacks callbacks_;
  ConnId next_id_ = 1;
  std::map<ConnId, Conn> conns_;
};

}  // namespace edge::net

#endif  // EDGE_NET_LINE_SERVER_H_
