#include "edge/net/supervisor.h"

#ifndef _WIN32
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

namespace edge::net {

namespace {

/// xorshift64* — the same generator the fault layer's injection streams use
/// (edge/fault/fault.cc), duplicated here because edge_net sits beside, not
/// above, edge_fault. Identical seeds give identical jitter sequences, which
/// is what makes redial drills replayable.
double NextUniform(uint64_t* state) {
  uint64_t x = *state;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  *state = x;
  return static_cast<double>((x * 0x2545F4914F6CDD1DULL) >> 11) *
         (1.0 / 9007199254740992.0);
}

}  // namespace

// --- BackoffPolicy ----------------------------------------------------------

BackoffPolicy::BackoffPolicy(const Options& options, uint64_t seed)
    : options_(options), rng_state_(seed == 0 ? 0x9E3779B97F4A7C15ULL : seed) {}

double BackoffPolicy::NextDelayMs() {
  double delay = options_.base_ms;
  for (int i = 0; i < attempt_ && delay < options_.max_ms; ++i) {
    delay *= options_.multiplier;
  }
  delay = std::min(delay, options_.max_ms);
  ++attempt_;
  if (options_.jitter > 0.0) {
    // Scale into [1 - jitter, 1): full-delay upper bound, never zero.
    delay *= 1.0 - options_.jitter + options_.jitter * NextUniform(&rng_state_);
  }
  return delay;
}

void BackoffPolicy::Reset() { attempt_ = 0; }

// --- FlapDetector -----------------------------------------------------------

bool FlapDetector::RecordDeath(double now) {
  deaths_.push_back(now);
  while (!deaths_.empty() && deaths_.front() < now - window_seconds_) {
    deaths_.pop_front();
  }
  return max_deaths_ > 0 && static_cast<int>(deaths_.size()) >= max_deaths_;
}

int FlapDetector::deaths_in_window(double now) const {
  int count = 0;
  for (double t : deaths_) {
    if (t >= now - window_seconds_) ++count;
  }
  return count;
}

// --- ReplicaSupervisor ------------------------------------------------------

const char* ReplicaHealthName(ReplicaHealth state) {
  switch (state) {
    case ReplicaHealth::kUp: return "up";
    case ReplicaHealth::kConnecting: return "connecting";
    case ReplicaHealth::kBackoff: return "backoff";
    case ReplicaHealth::kProbation: return "probation";
    case ReplicaHealth::kQuarantined: return "quarantined";
  }
  return "unknown";
}

ReplicaSupervisor::ReplicaSupervisor(const Options& options, uint64_t seed,
                                     double now, ReplicaHealth initial)
    : options_(options),
      backoff_(options.backoff, seed),
      flap_(options.flap_max_deaths, options.flap_window_seconds),
      state_(initial),
      last_transition_(now) {
  if (initial == ReplicaHealth::kBackoff) next_dial_ = now;  // Dial at once.
}

void ReplicaSupervisor::Transition(ReplicaHealth next, double now) {
  state_ = next;
  last_transition_ = now;
}

void ReplicaSupervisor::EnterBackoff(double now) {
  next_dial_ = now + backoff_.NextDelayMs() / 1000.0;
  Transition(ReplicaHealth::kBackoff, now);
}

void ReplicaSupervisor::RecordDeath(double now) {
  ++deaths_;
  probe_streak_ = 0;
  if (flap_.RecordDeath(now)) {
    ++breaker_trips_;
    char reason[96];
    std::snprintf(reason, sizeof(reason), "%d deaths in %.1fs",
                  flap_.deaths_in_window(now), options_.flap_window_seconds);
    quarantine_reason_ = reason;
    quarantine_until_ = now + options_.quarantine_seconds;
    Transition(ReplicaHealth::kQuarantined, now);
    return;
  }
  EnterBackoff(now);
}

void ReplicaSupervisor::OnConnected(double now) {
  if (state_ == ReplicaHealth::kQuarantined) return;  // Stale dial; ignore.
  probe_streak_ = 0;
  Transition(ReplicaHealth::kProbation, now);
}

void ReplicaSupervisor::OnDown(double now) {
  switch (state_) {
    case ReplicaHealth::kUp:
    case ReplicaHealth::kProbation:
      RecordDeath(now);
      return;
    case ReplicaHealth::kConnecting:
      // A failed or timed-out dial climbs the ladder without feeding the
      // breaker — a replica that is still booting is not flapping.
      EnterBackoff(now);
      return;
    case ReplicaHealth::kBackoff:
    case ReplicaHealth::kQuarantined:
      return;  // Already down.
  }
}

void ReplicaSupervisor::OnProbeOk(double now) {
  if (state_ != ReplicaHealth::kProbation) return;
  if (++probe_streak_ >= options_.readmit_probes) {
    backoff_.Reset();
    Transition(ReplicaHealth::kUp, now);
  }
}

void ReplicaSupervisor::OnProbeFail(double now) {
  if (state_ != ReplicaHealth::kProbation && state_ != ReplicaHealth::kUp) {
    return;
  }
  RecordDeath(now);
}

void ReplicaSupervisor::OnDialStart(double now) {
  ++redials_;
  Transition(ReplicaHealth::kConnecting, now);
}

bool ReplicaSupervisor::ShouldDial(double now) {
  if (state_ == ReplicaHealth::kQuarantined && now >= quarantine_until_) {
    // Cooldown over: one fresh chance. Another flap burst re-trips.
    next_dial_ = now;
    Transition(ReplicaHealth::kBackoff, now);
  }
  return state_ == ReplicaHealth::kBackoff && now >= next_dial_;
}

// --- fleet config -----------------------------------------------------------

Result<FleetConfig> ParseFleetConfig(const std::string& text) {
  FleetConfig config;
  std::istringstream in(text);
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    std::string keyword;
    if (!(fields >> keyword)) continue;  // Blank / comment-only line.
    if (keyword != "replica") {
      return Status::InvalidArgument("fleet config line " +
                                     std::to_string(line_number) +
                                     ": expected 'replica', got '" + keyword +
                                     "'");
    }
    FleetReplicaSpec spec;
    if (!(fields >> spec.addr)) {
      return Status::InvalidArgument("fleet config line " +
                                     std::to_string(line_number) +
                                     ": missing host:port");
    }
    size_t colon = spec.addr.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= spec.addr.size()) {
      return Status::InvalidArgument("fleet config line " +
                                     std::to_string(line_number) + ": '" +
                                     spec.addr + "' is not host:port");
    }
    std::string token;
    while (fields >> token) spec.argv.push_back(std::move(token));
    if (spec.argv.empty()) {
      return Status::InvalidArgument("fleet config line " +
                                     std::to_string(line_number) +
                                     ": missing command for " + spec.addr);
    }
    for (const FleetReplicaSpec& existing : config.replicas) {
      if (existing.addr == spec.addr) {
        return Status::InvalidArgument("fleet config line " +
                                       std::to_string(line_number) +
                                       ": duplicate replica " + spec.addr);
      }
    }
    config.replicas.push_back(std::move(spec));
  }
  if (config.replicas.empty()) {
    return Status::InvalidArgument("fleet config has no replica lines");
  }
  return config;
}

Result<FleetConfig> LoadFleetConfig(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) return Status::NotFound("cannot open fleet config " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return ParseFleetConfig(text.str());
}

// --- child processes --------------------------------------------------------

#ifndef _WIN32

Result<int> SpawnProcess(const std::vector<std::string>& argv) {
  if (argv.empty()) return Status::InvalidArgument("empty argv");
  std::vector<char*> c_argv;
  c_argv.reserve(argv.size() + 1);
  for (const std::string& arg : argv) {
    c_argv.push_back(const_cast<char*>(arg.c_str()));
  }
  c_argv.push_back(nullptr);

  pid_t pid = ::fork();
  if (pid < 0) {
    return Status::Internal(std::string("fork: ") + std::strerror(errno));
  }
  if (pid == 0) {
    // Child. The router's listen socket, client connections and replica
    // links must not leak into the replica: close everything above stdio.
    for (int fd = 3; fd < 1024; ++fd) ::close(fd);
    ::execvp(c_argv[0], c_argv.data());
    std::fprintf(stderr, "edge fleet: exec %s: %s\n", c_argv[0],
                 std::strerror(errno));
    ::_exit(127);
  }
  return static_cast<int>(pid);
}

bool ReapProcess(int pid, int* exit_code) {
  int status = 0;
  pid_t rc = ::waitpid(static_cast<pid_t>(pid), &status, WNOHANG);
  if (rc != static_cast<pid_t>(pid)) return false;
  if (exit_code != nullptr) {
    if (WIFEXITED(status)) {
      *exit_code = WEXITSTATUS(status);
    } else if (WIFSIGNALED(status)) {
      *exit_code = -WTERMSIG(status);
    } else {
      *exit_code = -1;
    }
  }
  return true;
}

void TerminateProcess(int pid, bool force) {
  if (pid > 0) ::kill(static_cast<pid_t>(pid), force ? SIGKILL : SIGTERM);
}

#else  // _WIN32: the fleet mode is POSIX-only; stubs keep the library linking.

Result<int> SpawnProcess(const std::vector<std::string>&) {
  return Status::FailedPrecondition("fleet process supervision requires POSIX");
}
bool ReapProcess(int, int*) { return false; }
void TerminateProcess(int, bool) {}

#endif

}  // namespace edge::net
