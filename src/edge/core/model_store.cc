#include "edge/core/model_store.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <numeric>
#include <sstream>
#include <utility>

#include "edge/common/check.h"
#include "edge/common/file_util.h"
#include "edge/common/hash.h"
#include "edge/core/edge_config.h"
#include "edge/core/edge_model.h"
#include "edge/fault/fault.h"

namespace edge::core {

namespace {

constexpr uint32_t kFormatVersion = 1;
constexpr uint32_t kEndianProbe = 0x01020304;
constexpr size_t kHeaderSize = 128;
constexpr size_t kHeaderChecksumOffset = 120;
constexpr size_t kAlign = 64;
constexpr size_t kManifestEntrySize = 32;
// Same allocation gate as EdgeModel::LoadInference: dimensions above this are
// a corrupt header, not a model.
constexpr uint64_t kMaxDim = uint64_t{1} << 26;
constexpr uint32_t kMaxSections = 64;
// The config section is a handful of text lines; anything bigger is corrupt.
constexpr uint64_t kMaxConfigBytes = uint64_t{1} << 16;

enum SectionId : uint32_t {
  kSectionConfig = 1,
  kSectionVocab = 2,
  kSectionVocabIndex = 3,
  kSectionEmbeddings = 4,
  kSectionScales = 5,
  kSectionAttentionQ = 6,
  kSectionHeadW = 7,
  kSectionHeadB = 8,
};

// All multi-byte reads go through memcpy: section offsets are 64-byte aligned
// relative to the file, but the FromBytes base pointer only guarantees
// allocator alignment.
uint16_t ReadU16(const char* p) {
  uint16_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
uint32_t ReadU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
uint64_t ReadU64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
double ReadF64(const char* p) {
  double v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
float ReadF32(const char* p) {
  float v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

void AppendU32(std::string* s, uint32_t v) {
  s->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void AppendU64(std::string* s, uint64_t v) {
  s->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void AppendF64(std::string* s, double v) {
  s->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PatchU64(std::string* s, size_t offset, uint64_t v) {
  std::memcpy(s->data() + offset, &v, sizeof(v));
}

size_t ElementSize(EmbedPrecision precision) {
  switch (precision) {
    case EmbedPrecision::kFp64: return 8;
    case EmbedPrecision::kFp32: return 4;
    case EmbedPrecision::kFp16: return 2;
    case EmbedPrecision::kInt8: return 1;
  }
  return 0;
}

Status Corrupt(const std::string& what) {
  return Status::InvalidArgument("model store: " + what);
}

/// Writer-side build id: ties an artifact to the toolchain that produced it
/// for debugging. Informational only — values are raw IEEE-754 bytes and load
/// under any build; the loader never compares it.
std::string LocalBuildId() {
  uint64_t h = Fnv1a64(__VERSION__);
  h = Fnv1a64("edge-model.v1", h);
  h = Fnv1a64Bytes(reinterpret_cast<const char*>(&kEndianProbe), 4, h);
  return ToHex16(h);
}

struct SectionEntry {
  uint32_t id = 0;
  uint64_t offset = 0;
  uint64_t size = 0;
  uint64_t fnv = 0;
};

}  // namespace

const char* EmbedPrecisionName(EmbedPrecision precision) {
  switch (precision) {
    case EmbedPrecision::kFp64: return "fp64";
    case EmbedPrecision::kFp32: return "fp32";
    case EmbedPrecision::kFp16: return "fp16";
    case EmbedPrecision::kInt8: return "int8";
  }
  return "unknown";
}

bool ParseEmbedPrecision(std::string_view name, EmbedPrecision* out) {
  EDGE_CHECK(out != nullptr);
  if (name == "fp64") *out = EmbedPrecision::kFp64;
  else if (name == "fp32") *out = EmbedPrecision::kFp32;
  else if (name == "fp16") *out = EmbedPrecision::kFp16;
  else if (name == "int8") *out = EmbedPrecision::kInt8;
  else return false;
  return true;
}

uint16_t Fp16FromDouble(double v) {
  float f = static_cast<float>(v);
  uint32_t x;
  std::memcpy(&x, &f, sizeof(x));
  uint16_t sign = static_cast<uint16_t>((x >> 16) & 0x8000u);
  uint32_t exp = (x >> 23) & 0xffu;
  uint32_t mant = x & 0x007fffffu;
  if (exp == 0xffu) {  // Inf / NaN: keep the class, collapse the payload.
    return static_cast<uint16_t>(sign | 0x7c00u | (mant != 0 ? 0x200u : 0u));
  }
  int32_t e = static_cast<int32_t>(exp) - 127 + 15;
  if (e >= 31) return static_cast<uint16_t>(sign | 0x7c00u);  // Overflow -> inf.
  if (e <= 0) {
    if (e < -10) return sign;  // Underflows even the smallest subnormal.
    // Subnormal half: shift the (implicit-1) mantissa into place,
    // round-to-nearest-even on the dropped bits.
    mant |= 0x00800000u;
    uint32_t shift = static_cast<uint32_t>(14 - e);
    uint16_t h = static_cast<uint16_t>(mant >> shift);
    uint32_t rem = mant & ((1u << shift) - 1u);
    uint32_t half = 1u << (shift - 1u);
    if (rem > half || (rem == half && (h & 1u))) ++h;
    return static_cast<uint16_t>(sign | h);
  }
  uint16_t h = static_cast<uint16_t>((static_cast<uint32_t>(e) << 10) | (mant >> 13));
  uint32_t rem = mant & 0x1fffu;
  // Round to nearest even; a carry out of the mantissa bumps the exponent,
  // which is exactly the right result (and saturates to inf at e == 31).
  if (rem > 0x1000u || (rem == 0x1000u && (h & 1u))) ++h;
  return static_cast<uint16_t>(sign | h);
}

double Fp16ToDouble(uint16_t h) {
  uint32_t sign = static_cast<uint32_t>(h & 0x8000u) << 16;
  uint32_t exp = (h >> 10) & 0x1fu;
  uint32_t mant = h & 0x3ffu;
  uint32_t bits;
  if (exp == 0) {
    if (mant == 0) {
      bits = sign;  // +/- 0.
    } else {
      // Subnormal half (value = mant * 2^-24): renormalize into a float
      // exponent. After `shift` left shifts the leading bit sits at 2^10, so
      // the value is 1.f * 2^(-14 - shift).
      int shift = 0;
      while ((mant & 0x400u) == 0) {
        mant <<= 1;
        ++shift;
      }
      mant &= 0x3ffu;
      bits = sign | (static_cast<uint32_t>(127 - 14 - shift) << 23) | (mant << 13);
    }
  } else if (exp == 31) {
    bits = sign | 0x7f800000u | (mant << 13);  // Inf / NaN.
  } else {
    bits = sign | ((exp - 15 + 127) << 23) | (mant << 13);
  }
  float f;
  std::memcpy(&f, &bits, sizeof(f));
  return static_cast<double>(f);
}

bool LooksLikeModelStore(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char magic[8];
  size_t n = std::fread(magic, 1, sizeof(magic), f);
  std::fclose(f);
  return n == sizeof(magic) && std::memcmp(magic, kModelStoreMagic, 8) == 0;
}

MmapModelStore::~MmapModelStore() {
  if (mapped_ != nullptr) ::munmap(mapped_, size_);
}

std::string MmapModelStore::build_id() const {
  return std::string(build_id_, sizeof(build_id_));
}

Result<std::shared_ptr<const MmapModelStore>> MmapModelStore::Open(
    const std::string& path, StoreVerify verify) {
  // Same fault point the text reload path probes, so the chaos suite's
  // transient-read drills cover both formats.
  if (EDGE_FAULT_POINT("io.checkpoint.read") == fault::Action::kError) {
    return Status::Internal("injected fault: io.checkpoint.read " + path);
  }
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return Status::NotFound("cannot open " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return Status::Internal("cannot stat " + path);
  }
  size_t size = static_cast<size_t>(st.st_size);
  if (size < kHeaderSize) {
    ::close(fd);
    return Corrupt("file smaller than header (" + path + ")");
  }
  void* mapped = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (mapped == MAP_FAILED) {
    // Portable fallback: validate over an owned copy instead.
    std::string bytes;
    Status status = ReadFileToString(path, &bytes, "io.checkpoint.read");
    if (!status.ok()) return status;
    return FromBytes(std::move(bytes), verify);
  }
  std::shared_ptr<MmapModelStore> store(new MmapModelStore());
  store->mapped_ = mapped;
  store->data_ = static_cast<const char*>(mapped);
  store->size_ = size;
  return Validate(std::move(store), verify);
}

Result<std::shared_ptr<const MmapModelStore>> MmapModelStore::FromBytes(
    std::string bytes, StoreVerify verify) {
  std::shared_ptr<MmapModelStore> store(new MmapModelStore());
  store->owned_ = std::move(bytes);
  store->data_ = store->owned_.data();
  store->size_ = store->owned_.size();
  return Validate(std::move(store), verify);
}

Result<std::shared_ptr<const MmapModelStore>> MmapModelStore::Validate(
    std::shared_ptr<MmapModelStore> store, StoreVerify verify) {
  // Untrusted-input discipline (same contract as EdgeModel::LoadInference):
  // every gate below returns a Status — never an abort, never an OOB read —
  // and every offset/size is bounds-checked before it is dereferenced or
  // sizes an allocation. Gates run outside-in: header, then manifest, then
  // per-section structure, then (kFull only) content checksums and scans.
  const char* data = store->data_;
  const size_t size = store->size_;
  const bool full = verify == StoreVerify::kFull;

  // --- Header. ---
  if (size < kHeaderSize) return Corrupt("file smaller than header");
  if (std::memcmp(data, kModelStoreMagic, 8) != 0) return Corrupt("bad magic");
  if (ReadU32(data + 8) != kFormatVersion) {
    return Corrupt("unsupported format version");
  }
  if (ReadU32(data + 12) != kEndianProbe) {
    return Corrupt("endianness mismatch (file written on a foreign-endian host)");
  }
  if (ReadU64(data + kHeaderChecksumOffset) !=
      Fnv1a64Bytes(data, kHeaderChecksumOffset)) {
    return Corrupt("header checksum mismatch");
  }
  const uint64_t file_size = ReadU64(data + 16);
  const uint64_t manifest_offset = ReadU64(data + 24);
  const uint32_t section_count = ReadU32(data + 32);
  const uint32_t precision_raw = ReadU32(data + 36);
  const uint64_t num_nodes = ReadU64(data + 40);
  const uint64_t hidden = ReadU64(data + 48);
  std::memcpy(store->build_id_, data + 56, sizeof(store->build_id_));
  for (size_t i = 72; i < kHeaderChecksumOffset; ++i) {
    if (data[i] != 0) return Corrupt("reserved header bytes not zero");
  }
  if (file_size != size) {
    return Corrupt("header size does not match file (truncated or appended)");
  }
  if (precision_raw > static_cast<uint32_t>(EmbedPrecision::kInt8)) {
    return Corrupt("unknown embedding precision");
  }
  const EmbedPrecision precision = static_cast<EmbedPrecision>(precision_raw);
  if (num_nodes == 0 || hidden == 0 || num_nodes > kMaxDim || hidden > kMaxDim) {
    return Corrupt("implausible embedding dimensions");
  }

  // --- Manifest. ---
  if (section_count == 0 || section_count > kMaxSections) {
    return Corrupt("implausible section count");
  }
  const uint64_t manifest_bytes =
      static_cast<uint64_t>(section_count) * kManifestEntrySize;
  if (manifest_offset < kHeaderSize || manifest_offset > size ||
      manifest_offset + manifest_bytes + 8 != size) {
    return Corrupt("manifest bounds do not close the file");
  }
  const char* manifest = data + manifest_offset;
  if (ReadU64(manifest + manifest_bytes) !=
      Fnv1a64Bytes(manifest, manifest_bytes)) {
    return Corrupt("manifest checksum mismatch");
  }

  SectionEntry sections[kMaxSections];
  uint64_t prev_end = kHeaderSize;
  bool seen[kMaxSections + 1] = {};
  for (uint32_t i = 0; i < section_count; ++i) {
    const char* e = manifest + static_cast<size_t>(i) * kManifestEntrySize;
    SectionEntry entry;
    entry.id = ReadU32(e);
    if (ReadU32(e + 4) != 0) return Corrupt("nonzero manifest entry padding");
    entry.offset = ReadU64(e + 8);
    entry.size = ReadU64(e + 16);
    entry.fnv = ReadU64(e + 24);
    if (entry.id < kSectionConfig || entry.id > kSectionHeadB) {
      return Corrupt("unknown section id");
    }
    if (seen[entry.id]) return Corrupt("duplicate section");
    seen[entry.id] = true;
    if (entry.offset % kAlign != 0) return Corrupt("misaligned section");
    // Sections are laid out in manifest order, back to back up to alignment:
    // the gap before each section is < kAlign and must be zero, so every
    // inter-section byte is accounted for at O(sections) cost.
    if (entry.offset < prev_end || entry.offset - prev_end >= kAlign) {
      return Corrupt("section gap out of order or oversized");
    }
    for (uint64_t b = prev_end; b < entry.offset; ++b) {
      if (data[b] != 0) return Corrupt("nonzero alignment padding");
    }
    if (entry.size > size - entry.offset) return Corrupt("section overruns file");
    prev_end = entry.offset + entry.size;
    if (prev_end > manifest_offset) return Corrupt("section overlaps manifest");
    sections[i] = entry;
  }
  if (prev_end != manifest_offset) {
    return Corrupt("unaccounted bytes between sections and manifest");
  }
  auto find = [&](uint32_t id) -> const SectionEntry* {
    for (uint32_t i = 0; i < section_count; ++i) {
      if (sections[i].id == id) return &sections[i];
    }
    return nullptr;
  };
  const SectionEntry* config_s = find(kSectionConfig);
  const SectionEntry* vocab_s = find(kSectionVocab);
  const SectionEntry* index_s = find(kSectionVocabIndex);
  const SectionEntry* embed_s = find(kSectionEmbeddings);
  const SectionEntry* scales_s = find(kSectionScales);
  const SectionEntry* attn_s = find(kSectionAttentionQ);
  const SectionEntry* head_w_s = find(kSectionHeadW);
  const SectionEntry* head_b_s = find(kSectionHeadB);
  if (config_s == nullptr || vocab_s == nullptr || index_s == nullptr ||
      embed_s == nullptr || attn_s == nullptr || head_w_s == nullptr ||
      head_b_s == nullptr) {
    return Corrupt("missing required section");
  }
  if ((precision == EmbedPrecision::kInt8) != (scales_s != nullptr)) {
    return Corrupt("scales section inconsistent with precision");
  }

  // --- Content checksums (kFull: O(file) at hashing speed). ---
  if (full) {
    for (uint32_t i = 0; i < section_count; ++i) {
      if (Fnv1a64Bytes(data + sections[i].offset, sections[i].size) !=
          sections[i].fnv) {
        return Corrupt("section checksum mismatch");
      }
    }
  }

  // --- Config section: same gates as the text loader. ---
  if (config_s->size == 0 || config_s->size > kMaxConfigBytes) {
    return Corrupt("implausible config section size");
  }
  {
    std::istringstream is(
        std::string(data + config_s->offset, config_s->size));
    EdgeConfig config;
    int use_attention = 1;
    is >> config.display_name;
    is >> config.num_components >> config.sigma_min_km >> config.rho_max >>
        use_attention;
    if (is.fail()) return Corrupt("truncated config section");
    config.use_attention = use_attention != 0;
    constexpr size_t kMaxComponents = 1024;
    if (config.num_components == 0 || config.num_components > kMaxComponents) {
      return Corrupt("implausible mixture component count");
    }
    Status config_status = config.Validate();
    if (!config_status.ok()) {
      return Corrupt("corrupt config: " + config_status.ToString());
    }
    double lat = 0.0, lon = 0.0;
    is >> lat >> lon;
    is >> store->fallback_x_ >> store->fallback_y_ >> store->fallback_sigma_km_;
    is >> store->coord_scale_km_;
    is >> store->attention_b_;
    if (is.fail()) return Corrupt("truncated config section");
    if (!(lat >= -90.0 && lat <= 90.0) || !(lon >= -360.0 && lon <= 360.0)) {
      return Corrupt("projection origin out of range");
    }
    if (!std::isfinite(store->attention_b_) ||
        !std::isfinite(store->fallback_x_) ||
        !std::isfinite(store->fallback_y_)) {
      return Corrupt("non-finite scalar parameters");
    }
    if (!(store->fallback_sigma_km_ > 0.0) ||
        !std::isfinite(store->fallback_sigma_km_)) {
      return Corrupt("non-positive fallback sigma");
    }
    if (!(store->coord_scale_km_ > 0.0) ||
        !std::isfinite(store->coord_scale_km_)) {
      return Corrupt("non-positive coordinate scale");
    }
    store->display_name_ = config.display_name;
    store->num_components_ = config.num_components;
    store->sigma_min_km_ = config.sigma_min_km;
    store->rho_max_ = config.rho_max;
    store->use_attention_ = config.use_attention;
    store->origin_lat_ = lat;
    store->origin_lon_ = lon;
  }

  // --- Vocabulary: count, blob size, offsets array, name blob. ---
  {
    const char* p = data + vocab_s->offset;
    if (vocab_s->size < 16) return Corrupt("truncated vocabulary section");
    const uint64_t count = ReadU64(p);
    const uint64_t blob_bytes = ReadU64(p + 8);
    if (count != num_nodes) return Corrupt("vocabulary count mismatch");
    // (count + 1) * 8 cannot overflow: count <= kMaxDim.
    const uint64_t offsets_bytes = (count + 1) * 8;
    if (blob_bytes > size || vocab_s->size != 16 + offsets_bytes + blob_bytes) {
      return Corrupt("vocabulary section size mismatch");
    }
    store->vocab_offsets_ = p + 16;
    store->vocab_blob_ = p + 16 + offsets_bytes;
    store->vocab_blob_bytes_ = blob_bytes;
  }
  if (index_s->size != num_nodes * 8) {
    return Corrupt("vocabulary index size mismatch");
  }
  store->vocab_index_ = data + index_s->offset;
  if (full) {
    // O(V) scan: offsets monotone and in-bounds, names non-empty, index a
    // strictly-sorted view of them. kFast skips this; lookups bounds-check
    // per access instead.
    uint64_t prev = ReadU64(store->vocab_offsets_);
    if (prev != 0) return Corrupt("vocabulary offsets must start at zero");
    for (uint64_t n = 1; n <= num_nodes; ++n) {
      uint64_t off = ReadU64(store->vocab_offsets_ + n * 8);
      if (off <= prev || off > store->vocab_blob_bytes_) {
        return Corrupt("non-monotone vocabulary offsets");
      }
      prev = off;
    }
    if (prev != store->vocab_blob_bytes_) {
      return Corrupt("vocabulary blob has trailing bytes");
    }
    store->num_nodes_ = num_nodes;  // NodeName needs these set to read.
    store->hidden_ = hidden;
    std::string_view prev_name;
    for (uint64_t n = 0; n < num_nodes; ++n) {
      uint64_t id = ReadU64(store->vocab_index_ + n * 8);
      if (id >= num_nodes) return Corrupt("vocabulary index id out of range");
      std::string_view name = store->NodeName(id);
      if (n > 0 && !(prev_name < name)) {
        return Corrupt("vocabulary index not strictly sorted");
      }
      prev_name = name;
    }
  }
  store->num_nodes_ = num_nodes;
  store->hidden_ = hidden;
  store->precision_ = precision;

  // --- Embeddings (+ int8 scales). ---
  // num_nodes * hidden * elem cannot overflow: both factors <= 2^26.
  const uint64_t elem = ElementSize(precision);
  if (embed_s->size != num_nodes * hidden * elem) {
    return Corrupt("embedding section size mismatch");
  }
  store->embeddings_ = data + embed_s->offset;
  if (scales_s != nullptr) {
    if (scales_s->size != num_nodes * 8) {
      return Corrupt("scales section size mismatch");
    }
    store->scales_ = data + scales_s->offset;
  }
  if (full) {
    const char* p = store->embeddings_;
    const uint64_t total = num_nodes * hidden;
    switch (precision) {
      case EmbedPrecision::kFp64:
        for (uint64_t i = 0; i < total; ++i) {
          if (!std::isfinite(ReadF64(p + i * 8))) {
            return Corrupt("non-finite embedding value");
          }
        }
        break;
      case EmbedPrecision::kFp32:
        for (uint64_t i = 0; i < total; ++i) {
          if (!std::isfinite(ReadF32(p + i * 4))) {
            return Corrupt("non-finite embedding value");
          }
        }
        break;
      case EmbedPrecision::kFp16:
        for (uint64_t i = 0; i < total; ++i) {
          // Exponent 31 is inf/NaN in binary16.
          if ((ReadU16(p + i * 2) & 0x7c00u) == 0x7c00u) {
            return Corrupt("non-finite embedding value");
          }
        }
        break;
      case EmbedPrecision::kInt8:
        for (uint64_t i = 0; i < total; ++i) {
          // Symmetric quantization never emits -128.
          if (static_cast<int8_t>(p[i]) == -128) {
            return Corrupt("out-of-range int8 embedding value");
          }
        }
        for (uint64_t n = 0; n < num_nodes; ++n) {
          double scale = ReadF64(store->scales_ + n * 8);
          if (!std::isfinite(scale) || scale < 0.0) {
            return Corrupt("invalid quantization scale");
          }
        }
        break;
    }
  }

  // --- Small matrices (always parsed and copied out; O(hidden * theta)). ---
  const size_t theta_dim = 6 * store->num_components_;
  auto parse_matrix = [&](const SectionEntry* s, size_t want_rows,
                          size_t want_cols, nn::Matrix* out,
                          const char* what) -> Status {
    if (s->size < 16) return Corrupt(std::string("truncated ") + what);
    const char* p = data + s->offset;
    const uint64_t rows = ReadU64(p);
    const uint64_t cols = ReadU64(p + 8);
    if (rows != want_rows || cols != want_cols) {
      return Corrupt(std::string(what) + " dimension mismatch");
    }
    if (s->size != 16 + rows * cols * 8) {
      return Corrupt(std::string(what) + " size mismatch");
    }
    *out = nn::Matrix(rows, cols);
    for (uint64_t r = 0; r < rows; ++r) {
      for (uint64_t c = 0; c < cols; ++c) {
        double v = ReadF64(p + 16 + (r * cols + c) * 8);
        if (!std::isfinite(v)) {
          return Corrupt(std::string("non-finite value in ") + what);
        }
        out->At(r, c) = v;
      }
    }
    return Status::Ok();
  };
  Status status =
      parse_matrix(attn_s, hidden, 1, &store->attention_q_, "attention q");
  if (status.ok()) {
    status = parse_matrix(head_w_s, hidden, theta_dim, &store->head_w_,
                          "head weights");
  }
  if (status.ok()) {
    status = parse_matrix(head_b_s, 1, theta_dim, &store->head_b_, "head bias");
  }
  if (!status.ok()) return status;

  return std::shared_ptr<const MmapModelStore>(std::move(store));
}

void MmapModelStore::DequantizeRow(size_t node, double* out) const {
  EDGE_CHECK(node < num_nodes_) << "embedding row out of range";
  const size_t h = hidden_;
  switch (precision_) {
    case EmbedPrecision::kFp64:
      std::memcpy(out, embeddings_ + node * h * 8, h * 8);
      break;
    case EmbedPrecision::kFp32: {
      const char* p = embeddings_ + node * h * 4;
      for (size_t d = 0; d < h; ++d) {
        double v = static_cast<double>(ReadF32(p + d * 4));
        out[d] = std::isfinite(v) ? v : 0.0;
      }
      break;
    }
    case EmbedPrecision::kFp16: {
      const char* p = embeddings_ + node * h * 2;
      for (size_t d = 0; d < h; ++d) {
        double v = Fp16ToDouble(ReadU16(p + d * 2));
        out[d] = std::isfinite(v) ? v : 0.0;
      }
      break;
    }
    case EmbedPrecision::kInt8: {
      double scale = ReadF64(scales_ + node * 8);
      if (!std::isfinite(scale) || scale < 0.0) scale = 0.0;
      const char* p = embeddings_ + node * h;
      for (size_t d = 0; d < h; ++d) {
        out[d] = scale * static_cast<double>(static_cast<int8_t>(p[d]));
      }
      break;
    }
  }
}

nn::ConstRowSpan MmapModelStore::EmbeddingRow(
    size_t node, std::vector<double>* scratch) const {
  EDGE_CHECK(node < num_nodes_) << "embedding row out of range";
  if (precision_ == EmbedPrecision::kFp64) {
    return {reinterpret_cast<const double*>(embeddings_ + node * hidden_ * 8),
            hidden_};
  }
  EDGE_CHECK(scratch != nullptr) << "quantized row needs a scratch buffer";
  scratch->resize(hidden_);
  DequantizeRow(node, scratch->data());
  return {scratch->data(), hidden_};
}

size_t MmapModelStore::NodeId(std::string_view name) const {
  size_t lo = 0;
  size_t hi = num_nodes_;
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    uint64_t id = ReadU64(vocab_index_ + mid * 8);
    if (id >= num_nodes_) return kNotFound;  // Corrupt index under kFast.
    std::string_view mid_name = NodeName(id);
    if (mid_name == name) return id;
    if (mid_name < name) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return kNotFound;
}

std::string_view MmapModelStore::NodeName(size_t id) const {
  if (id >= num_nodes_) return {};
  uint64_t a = ReadU64(vocab_offsets_ + id * 8);
  uint64_t b = ReadU64(vocab_offsets_ + (id + 1) * 8);
  if (a > b || b > vocab_blob_bytes_) return {};  // Corrupt offsets under kFast.
  return {vocab_blob_ + a, static_cast<size_t>(b - a)};
}

Status SerializeModelStore(const EdgeModel& model, EmbedPrecision precision,
                           std::string* out) {
  EDGE_CHECK(out != nullptr);
  if (!model.fitted_) return Status::FailedPrecondition("model not fitted");
  const size_t num_nodes = model.num_entities();
  const size_t hidden = model.hidden_dim();
  if (num_nodes == 0 || hidden == 0) {
    return Status::FailedPrecondition("model has no embedding table");
  }

  // --- Section payloads. ---
  std::string config_blob;
  {
    // precision(17) round-trips doubles exactly, so config scalars survive
    // text -> binary -> text bitwise (matching SaveInference's formatting).
    std::ostringstream os;
    os.precision(17);
    const EdgeConfig& config = model.config_;
    os << config.display_name << "\n";
    os << config.num_components << " " << config.sigma_min_km << " "
       << config.rho_max << " " << (config.use_attention ? 1 : 0) << "\n";
    os << model.projection().origin().lat << " "
       << model.projection().origin().lon << "\n";
    os << model.fallback_mean_.x << " " << model.fallback_mean_.y << " "
       << model.fallback_sigma_km_ << "\n";
    os << model.coord_scale_km_ << "\n";
    os << model.attention_b_ << "\n";
    config_blob = os.str();
  }

  std::string vocab_blob;
  std::vector<std::string_view> names(num_nodes);
  {
    std::string offsets;
    std::string blob;
    AppendU64(&vocab_blob, num_nodes);
    for (size_t n = 0; n < num_nodes; ++n) {
      AppendU64(&offsets, blob.size());
      std::string_view name = model.NodeNameOf(n);
      blob.append(name.data(), name.size());
    }
    AppendU64(&offsets, blob.size());
    AppendU64(&vocab_blob, blob.size());
    vocab_blob += offsets;
    // string_views into vocab_blob would dangle across appends; re-derive
    // names from the final blob below instead.
    vocab_blob += blob;
  }
  {
    const char* offsets = vocab_blob.data() + 16;
    const char* blob = offsets + (num_nodes + 1) * 8;
    for (size_t n = 0; n < num_nodes; ++n) {
      uint64_t a = ReadU64(offsets + n * 8);
      uint64_t b = ReadU64(offsets + (n + 1) * 8);
      names[n] = {blob + a, static_cast<size_t>(b - a)};
    }
  }
  std::string index_blob;
  {
    std::vector<uint64_t> ids(num_nodes);
    std::iota(ids.begin(), ids.end(), 0);
    std::sort(ids.begin(), ids.end(),
              [&](uint64_t a, uint64_t b) { return names[a] < names[b]; });
    for (uint64_t id : ids) AppendU64(&index_blob, id);
  }

  std::string embed_blob;
  std::string scales_blob;
  {
    embed_blob.reserve(num_nodes * hidden * ElementSize(precision));
    std::vector<double> scratch;
    for (size_t n = 0; n < num_nodes; ++n) {
      nn::ConstRowSpan row = model.EmbeddingRowOf(n, &scratch);
      switch (precision) {
        case EmbedPrecision::kFp64:
          for (size_t d = 0; d < hidden; ++d) AppendF64(&embed_blob, row[d]);
          break;
        case EmbedPrecision::kFp32:
          for (size_t d = 0; d < hidden; ++d) {
            float f = static_cast<float>(row[d]);
            embed_blob.append(reinterpret_cast<const char*>(&f), sizeof(f));
          }
          break;
        case EmbedPrecision::kFp16:
          for (size_t d = 0; d < hidden; ++d) {
            uint16_t h = Fp16FromDouble(row[d]);
            embed_blob.append(reinterpret_cast<const char*>(&h), sizeof(h));
          }
          break;
        case EmbedPrecision::kInt8: {
          double maxabs = 0.0;
          for (size_t d = 0; d < hidden; ++d) {
            maxabs = std::max(maxabs, std::fabs(row[d]));
          }
          // All-zero rows get scale 0 (every q is 0); otherwise the row's
          // extreme maps to +/-127.
          double scale = maxabs > 0.0 ? maxabs / 127.0 : 0.0;
          AppendF64(&scales_blob, scale);
          for (size_t d = 0; d < hidden; ++d) {
            double q = scale > 0.0 ? std::round(row[d] / scale) : 0.0;
            q = std::min(127.0, std::max(-127.0, q));
            char byte = static_cast<char>(static_cast<int8_t>(q));
            embed_blob.push_back(byte);
          }
          break;
        }
      }
    }
  }

  auto matrix_blob = [](const nn::Matrix& m) {
    std::string blob;
    AppendU64(&blob, m.rows());
    AppendU64(&blob, m.cols());
    for (size_t r = 0; r < m.rows(); ++r) {
      for (size_t c = 0; c < m.cols(); ++c) AppendF64(&blob, m.At(r, c));
    }
    return blob;
  };
  struct Pending {
    uint32_t id;
    const std::string* payload;
  };
  // LoadFromStore copies the small matrices into the model, so these are
  // valid for trained, text-loaded and store-backed models alike.
  std::string attn_blob = matrix_blob(model.attention_q_);
  std::string head_w_blob = matrix_blob(model.head_w_);
  std::string head_b_blob = matrix_blob(model.head_b_);
  std::vector<Pending> pending = {
      {kSectionConfig, &config_blob},   {kSectionVocab, &vocab_blob},
      {kSectionVocabIndex, &index_blob}, {kSectionEmbeddings, &embed_blob},
  };
  if (precision == EmbedPrecision::kInt8) {
    pending.push_back({kSectionScales, &scales_blob});
  }
  pending.push_back({kSectionAttentionQ, &attn_blob});
  pending.push_back({kSectionHeadW, &head_w_blob});
  pending.push_back({kSectionHeadB, &head_b_blob});

  // --- Assemble: header, aligned sections, manifest; patch header last. ---
  std::string& file = *out;
  file.clear();
  file.append(kModelStoreMagic, 8);
  AppendU32(&file, kFormatVersion);
  AppendU32(&file, kEndianProbe);
  AppendU64(&file, 0);  // file_size, patched below.
  AppendU64(&file, 0);  // manifest_offset, patched below.
  AppendU32(&file, static_cast<uint32_t>(pending.size()));
  AppendU32(&file, static_cast<uint32_t>(precision));
  AppendU64(&file, num_nodes);
  AppendU64(&file, hidden);
  file += LocalBuildId();
  file.append(kHeaderChecksumOffset - file.size(), '\0');  // Reserved.
  AppendU64(&file, 0);  // Header checksum, patched below.
  EDGE_CHECK(file.size() == kHeaderSize);

  std::vector<SectionEntry> manifest_entries;
  manifest_entries.reserve(pending.size());
  for (const Pending& p : pending) {
    file.append((kAlign - file.size() % kAlign) % kAlign, '\0');
    SectionEntry entry;
    entry.id = p.id;
    entry.offset = file.size();
    entry.size = p.payload->size();
    entry.fnv = Fnv1a64(*p.payload);
    manifest_entries.push_back(entry);
    file += *p.payload;
  }
  const uint64_t manifest_offset = file.size();
  for (const SectionEntry& entry : manifest_entries) {
    AppendU32(&file, entry.id);
    AppendU32(&file, 0);
    AppendU64(&file, entry.offset);
    AppendU64(&file, entry.size);
    AppendU64(&file, entry.fnv);
  }
  AppendU64(&file, Fnv1a64Bytes(file.data() + manifest_offset,
                                file.size() - manifest_offset));
  PatchU64(&file, 16, file.size());
  PatchU64(&file, 24, manifest_offset);
  PatchU64(&file, kHeaderChecksumOffset,
           Fnv1a64Bytes(file.data(), kHeaderChecksumOffset));
  return Status::Ok();
}

Status SaveModelStoreAtomic(const EdgeModel& model, EmbedPrecision precision,
                            const std::string& path) {
  std::string bytes;
  Status status = SerializeModelStore(model, precision, &bytes);
  if (!status.ok()) return status;
  return WriteFileAtomic(path, bytes, "io.checkpoint.write");
}

Result<std::unique_ptr<EdgeModel>> LoadInferenceAuto(const std::string& path,
                                                     StoreVerify verify) {
  if (LooksLikeModelStore(path)) {
    Result<std::shared_ptr<const MmapModelStore>> store =
        MmapModelStore::Open(path, verify);
    if (!store.ok()) return store.status();
    return EdgeModel::LoadFromStore(std::move(store).value());
  }
  std::string bytes;
  Status status = ReadFileToString(path, &bytes, "io.checkpoint.read");
  if (!status.ok()) return status;
  std::istringstream in(bytes);
  return EdgeModel::LoadInference(&in);
}

}  // namespace edge::core
