#ifndef EDGE_CORE_EDGE_MODEL_H_
#define EDGE_CORE_EDGE_MODEL_H_

#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "edge/core/edge_config.h"
#include "edge/data/pipeline.h"
#include "edge/embedding/entity2vec.h"
#include "edge/eval/geolocator.h"
#include "edge/geo/mixture.h"
#include "edge/geo/projection.h"
#include "edge/graph/entity_graph.h"
#include "edge/graph/gcn.h"
#include "edge/nn/layers.h"

namespace edge::core {

class MmapModelStore;
enum class EmbedPrecision : uint32_t;

/// One entity's learned attention weight in a prediction — the
/// interpretability signal of Eq. 2-3 (which entities drove the location).
struct EntityAttention {
  std::string entity;
  double weight = 0.0;
};

/// EDGE's prediction for one tweet: a full bivariate Gaussian mixture in the
/// local km plane (convert coordinates with the model's projection()), the
/// Eq. 14 single-point conversion in lat/lon, and the per-entity attention.
struct EdgePrediction {
  geo::GaussianMixture2d mixture;  ///< In the model's local km plane.
  geo::LatLon point;               ///< argmax of the mixture density (Eq. 14).
  std::vector<EntityAttention> attention;
  /// True when no tweet entity was in the entity graph and the model fell
  /// back to its training-set prior (such tweets are excluded from the
  /// paper's evaluation; the fallback keeps the API total).
  bool used_fallback = false;
};

/// The Entity-Diffusion Gaussian Ensemble model (§III): entity2vec semantic
/// embeddings, diffused over the co-occurrence entity graph by a GCN
/// (Eq. 1), aggregated per tweet by learned attention (Eq. 2-4), mapped by a
/// fully-connected head (Eq. 7) to the parameters of a bivariate Gaussian
/// mixture (Eq. 8-12), trained end-to-end by maximizing the likelihood of
/// the ground-truth locations (Eq. 13).
class EdgeModel : public eval::Geolocator {
 public:
  explicit EdgeModel(EdgeConfig config);

  EdgeModel(const EdgeModel&) = delete;
  EdgeModel& operator=(const EdgeModel&) = delete;

  std::string name() const override { return config_.display_name; }

  /// Trains the full pipeline on the dataset's training split:
  /// entity2vec -> entity graph -> GCN+attention+MDN end-to-end.
  void Fit(const data::ProcessedDataset& dataset) override;

  /// Eq. 14 single-point conversion (always succeeds; see used_fallback).
  bool PredictPoint(const data::ProcessedTweet& tweet, geo::LatLon* out) override;

  /// Tweet-parallel batched prediction under config().num_threads. Predict()
  /// only reads fitted state, so tweets are independent; the output equals
  /// the serial PredictPoint loop element-for-element at any budget.
  void PredictPoints(const std::vector<data::ProcessedTweet>& tweets,
                     std::vector<geo::LatLon>* points,
                     std::vector<uint8_t>* predicted) override;

  /// Full mixture prediction with attention interpretability. The tweet's
  /// in-graph entities are canonicalized to ascending node-id order before
  /// aggregation, so the prediction is a pure (bitwise-deterministic)
  /// function of the entity *set* — the invariant edge::serve's response
  /// cache keys on.
  EdgePrediction Predict(const data::ProcessedTweet& tweet) const;

  /// Tweet-parallel batched Predict() under config().num_threads; output
  /// equals the serial Predict() loop element-for-element at any budget.
  /// This is the batch path edge::serve drains its micro-batches through.
  void PredictBatch(const std::vector<data::ProcessedTweet>& tweets,
                    std::vector<EdgePrediction>* out) const;

  /// The training-set prior answered for tweets with no in-graph entity —
  /// what a serving layer degrades to for shed or timed-out requests.
  EdgePrediction FallbackPrediction() const;

  /// Overrides the inference thread budget (EdgeConfig::num_threads
  /// semantics: 0 = hardware, 1 = serial). Serving processes tune this on a
  /// loaded checkpoint, whose stream does not carry a thread budget.
  void set_num_threads(int n);

  /// Mean training NLL per epoch (Eq. 13), for convergence tests/plots.
  const std::vector<double>& loss_history() const { return loss_history_; }

  /// The co-occurrence entity graph built during Fit.
  const graph::EntityGraph& entity_graph() const { return graph_; }

  /// The km-plane projection the mixture lives in.
  const geo::LocalProjection& projection() const;

  /// The trained entity2vec embeddings.
  const embedding::Entity2Vec& entity2vec() const { return *entity2vec_; }

  const EdgeConfig& config() const { return config_; }

  /// Writes the inference state (smoothed embeddings, attention and head
  /// parameters, projection, fallback prior) in a versioned text format.
  Status SaveInference(std::ostream* out) const;

  /// Restores a Predict()-capable model saved by SaveInference. The restored
  /// model cannot be Fit() again. Truncated, dimension-mismatched or
  /// otherwise corrupt streams are rejected with a Status error — never an
  /// abort — so a serving process can refuse a bad checkpoint and keep
  /// running.
  static Result<std::unique_ptr<EdgeModel>> LoadInference(std::istream* in);

  /// Builds a Predict()-capable model over an already-validated edge-model.v1
  /// store (model_store.h). Embedding rows are served out of the store —
  /// zero-copy for fp64, dequantize-on-gather for fp32/fp16/int8 — so this is
  /// O(1) in entity count: no embedding copy, no graph reconstruction. The
  /// model holds the shared_ptr, keeping every ConstRowSpan it gathers valid.
  /// Like LoadInference results, the model cannot be Fit() again.
  static Result<std::unique_ptr<EdgeModel>> LoadFromStore(
      std::shared_ptr<const MmapModelStore> store);

  /// Node id of an entity name in this model's vocabulary (the id space the
  /// embedding rows and the serve-layer cache keys live in), or
  /// graph::EntityGraph::kNotFound. Routes to the entity graph for trained /
  /// text-loaded models and to the mapped vocabulary for store-backed ones —
  /// both number nodes in the same insertion order, so ids agree across
  /// formats for the same checkpoint.
  size_t NodeIdOf(std::string_view name) const;

  /// Entity name of node `id` (inverse of NodeIdOf). The view aliases model
  /// storage and lives as long as the model.
  std::string_view NodeNameOf(size_t id) const;

  /// Number of entities in the vocabulary (= embedding rows).
  size_t num_entities() const;

  /// The backing store for store-backed models, nullptr otherwise.
  const MmapModelStore* store() const { return store_.get(); }

 private:
  friend Status SerializeModelStore(const EdgeModel& model,
                                    EmbedPrecision precision, std::string* out);

  /// Node ids of a tweet's in-graph entities, in canonical ascending order.
  std::vector<size_t> GraphIds(const data::ProcessedTweet& tweet) const;
  EdgePrediction PredictFromIds(const std::vector<size_t>& ids,
                                const std::vector<std::string>& names) const;
  /// Embedding row `node`, wherever it lives (dense matrix, mapped fp64
  /// store, or dequantized via *scratch for quantized stores).
  nn::ConstRowSpan EmbeddingRowOf(size_t node, std::vector<double>* scratch) const;
  /// Embedding width (dense matrix or store header).
  size_t hidden_dim() const;

  EdgeConfig config_;
  bool fitted_ = false;

  /// Set only by LoadFromStore: the mapped checkpoint this model serves
  /// embeddings from. When set, smoothed_embeddings_ and graph_ stay empty;
  /// the attention/head matrices below are copies of the store's (they are
  /// O(hidden), not O(entities)).
  std::shared_ptr<const MmapModelStore> store_;

  std::unique_ptr<embedding::Entity2Vec> entity2vec_;
  graph::EntityGraph graph_;
  nn::CsrMatrix normalized_adjacency_;
  std::unique_ptr<geo::LocalProjection> projection_;

  // Trained parameters (dense copies used for inference).
  nn::Matrix smoothed_embeddings_;  ///< H after the last GCN layer, |V| x d.
  nn::Matrix attention_q_;          ///< d x 1.
  double attention_b_ = 0.0;
  nn::Matrix head_w_;               ///< d x 6M.
  nn::Matrix head_b_;               ///< 1 x 6M.

  /// Prior fit to the training locations; used when a tweet has no in-graph
  /// entity.
  geo::PlanePoint fallback_mean_;
  double fallback_sigma_km_ = 5.0;

  /// Standardization scale: the MDN is trained on plane coordinates divided
  /// by this (roughly the training spread in km), the classic MDN
  /// conditioning trick — raw-km targets force the linear head to grow
  /// region-sized weights against weight decay. Predictions are rescaled
  /// back to km. DESIGN.md §4(3).
  double coord_scale_km_ = 1.0;

  std::vector<double> loss_history_;
};

}  // namespace edge::core

#endif  // EDGE_CORE_EDGE_MODEL_H_
