#ifndef EDGE_CORE_TRAIN_CHECKPOINT_H_
#define EDGE_CORE_TRAIN_CHECKPOINT_H_

#include <string>
#include <vector>

#include "edge/common/rng.h"
#include "edge/common/status.h"
#include "edge/core/edge_config.h"
#include "edge/nn/optimizer.h"

/// \file
/// Crash-safe training-state checkpoints (DESIGN.md §12). A TrainState holds
/// everything EdgeModel::Fit() needs to continue an interrupted run
/// bit-for-bit: parameter values, Adam moments, the training RNG, the epoch
/// cursor, and the divergence-recovery bookkeeping. Stages 1-4 of Fit are
/// pure functions of (dataset, seed) and are re-derived on resume rather
/// than stored.
///
/// Format `EDGE-TRAINSTATE v1`: line-oriented text at precision 17 (IEEE
/// doubles round-trip bitwise, like the EDGE-INFERENCE format), terminated
/// by an `END <fnv1a64-hex>` checksum line over every preceding byte. The
/// checksum line makes torn writes detectable: every strict truncation
/// prefix of a valid file — and any bit flip before END — is rejected by
/// ParseTrainState with a Status, never an abort.

namespace edge::core {

/// Snapshot of an in-flight Fit() at an epoch boundary.
struct TrainState {
  /// Compatibility stamp (TrainFingerprint of config + dataset shape); a
  /// checkpoint only resumes a run it was written by.
  std::string fingerprint;

  /// First epoch the resumed run should execute.
  int next_epoch = 0;

  /// Divergence-recovery bookkeeping: multiplier applied to the base
  /// learning rate (halved per rollback), rollbacks consumed so far, and the
  /// last healthy epoch's mean gradient norm (spike baseline).
  double lr_scale = 1.0;
  int rollbacks_used = 0;
  double last_good_grad_norm = 0.0;

  Rng::State rng;

  /// Mean NLL of epochs [0, next_epoch).
  std::vector<double> loss_history;

  /// Parameter values in Fit's canonical order (GCN layers, attention q/b if
  /// attention is on, head W, head b).
  std::vector<nn::Matrix> params;

  nn::AdamState adam;
};

/// Deterministic compatibility stamp for a (config, dataset) pair. Two runs
/// with equal fingerprints execute identical training streams, so a
/// checkpoint from one can seed the other.
std::string TrainFingerprint(const EdgeConfig& config, size_t num_train_tweets,
                             size_t num_train_entities);

/// Renders `state` in the EDGE-TRAINSTATE v1 format (including the trailing
/// checksum line).
std::string SerializeTrainState(const TrainState& state);

/// Parses and validates a serialized TrainState. Truncations, bit flips,
/// bad magic, implausible sizes and non-finite values all come back as a
/// Status error.
Result<TrainState> ParseTrainState(const std::string& content);

/// Durably writes `state` to `path`: atomic temp-fsync-rename, then a
/// read-back verification (catching injected torn writes), retried with
/// backoff. Fault points: io.checkpoint.write, io.checkpoint.verify.
Status SaveTrainStateAtomic(const std::string& path, const TrainState& state);

/// Loads a checkpoint from `path`, retrying transient read faults. Fault
/// point: io.checkpoint.read.
Result<TrainState> LoadTrainState(const std::string& path);

}  // namespace edge::core

#endif  // EDGE_CORE_TRAIN_CHECKPOINT_H_
