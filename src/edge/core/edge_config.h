#ifndef EDGE_CORE_EDGE_CONFIG_H_
#define EDGE_CORE_EDGE_CONFIG_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "edge/common/status.h"
#include "edge/embedding/entity2vec.h"
#include "edge/nn/mdn.h"
#include "edge/nn/optimizer.h"

namespace edge::core {

/// Crash-safety and divergence-recovery knobs for EdgeModel::Fit()
/// (DESIGN.md §12). All defaults leave recovery off; an unconfigured Fit is
/// byte-for-byte the legacy training loop.
struct TrainRecoveryOptions {
  /// Directory for the training-state checkpoint (weights + Adam moments +
  /// RNG + epoch cursor). Empty disables checkpointing and resume.
  std::string checkpoint_dir;

  /// Write a checkpoint every this many completed epochs.
  int checkpoint_every = 1;

  /// When a compatible checkpoint exists in checkpoint_dir, continue from it
  /// instead of starting at epoch 0. The resumed run reproduces the
  /// uninterrupted run's loss history bitwise.
  bool resume = true;

  /// Stop gracefully (writing a final checkpoint) after this many epochs in
  /// this process, independent of EdgeConfig::epochs — time-boxed training.
  /// 0 = run to completion. Because EdgeConfig::epochs still anchors the LR
  /// schedule, a later resumed run continues the same schedule.
  int max_epochs_per_run = 0;

  /// Divergence sentinel budget: how many times a non-finite epoch (or a
  /// grad-norm spike, below) may trigger rollback-and-retry with a halved
  /// learning rate before Fit() gives up and keeps the last good state.
  int max_rollbacks = 3;

  /// When > 0, an epoch whose mean grad norm exceeds this factor times the
  /// last good epoch's is treated as divergence. 0 disables the spike check
  /// (non-finite loss is always treated as divergence).
  double grad_spike_factor = 0.0;

  /// Optional cooperative stop: when non-null and set, Fit() finishes the
  /// current epoch, writes a final checkpoint, and returns. Signal handlers
  /// in tools flip this.
  const std::atomic<bool>* stop_flag = nullptr;
};

/// Full configuration of the EDGE pipeline. Defaults follow §IV-B (Adam with
/// learning rate 0.01 and weight decay 0.01, two GCN layers, M = 4 mixture
/// components); sizes are scaled for CPU benches and swept by the Fig. 6
/// sensitivity bench. The ablations of Table IV are configuration points:
///   NoGCN      -> gcn_hidden = {}
///   SUM        -> use_attention = false
///   NoMixture  -> num_components = 1
struct EdgeConfig {
  EdgeConfig() {
    // Tweet corpora are small next to word2vec's usual billions of tokens:
    // frequent-token subsampling would delete exactly the popular entities
    // the model needs, and many epochs are cheap. Measured on the synthetic
    // worlds these two settings cut the median error by ~3x (embedding
    // quality is the binding constraint at CPU scale; see EXPERIMENTS.md).
    entity2vec.subsample_threshold = 0.0;
    entity2vec.epochs = 50;
    adam.weight_decay = 1e-4;  // See the comment at `adam` below.
  }

  /// Row label in result tables ("EDGE", "NoGCN", ...).
  std::string display_name = "EDGE";

  /// Node-feature source for the GCN input matrix X.
  enum class FeatureMode {
    /// entity2vec semantic embeddings (the paper's design).
    kEntity2Vec,
    /// One-hot node identity — an ablation that removes semantic sharing
    /// between entities and lets the model memorize each training entity's
    /// location directly.
    kIdentity,
  };
  FeatureMode feature_mode = FeatureMode::kEntity2Vec;

  /// When true (default), embedding_dim and the GCN widths are picked at
  /// Fit() time from the training entity count (96 for graphs of >= 300
  /// entities, 64 below) — mirroring how the paper's fixed 400 dims relate
  /// to its much larger entity vocabularies. Set false to use the explicit
  /// values below (the Fig. 6 sweeps do).
  bool auto_dim = true;
  /// entity2vec embedding length (paper default 400; bench default 96).
  size_t embedding_dim = 96;
  /// GCN layer output widths; {96, 96} = the paper's two-layer network at
  /// our scale. Entries are replaced by the auto width when auto_dim is on
  /// (an empty list still means NoGCN).
  std::vector<size_t> gcn_hidden = {96, 96};
  /// Number of Gaussian mixture components M.
  size_t num_components = 4;
  /// Attention aggregation (Eq. 2-4) vs plain summation (SUM ablation).
  bool use_attention = true;

  /// Training schedule.
  int epochs = 100;
  size_t batch_size = 128;
  /// Linearly decay the learning rate to lr/10 over training; constant-lr
  /// Adam leaves the head jittering at a precision floor of ~1 km.
  bool lr_decay = true;
  double grad_clip_norm = 5.0;
  /// lr = 0.01 per the paper. Weight decay deviates (paper: 0.01): with our
  /// scaled-down corpora and standardized targets, 0.01 L2 collapses the
  /// head toward the global mixture (measured +1 km median); 1e-4 keeps the
  /// regularization without the collapse. DESIGN.md section 4.
  nn::AdamOptions adam;

  /// entity2vec training options; its dim is overridden by embedding_dim.
  embedding::Entity2VecOptions entity2vec;

  /// MDN stability floors. The sigma floor also regularizes Eq. 14's mode
  /// finding: without it, near-degenerate components grab the density argmax.
  double sigma_min_km = 0.3;
  double rho_max = 0.995;

  uint64_t seed = 123;

  /// Crash-safe checkpointing, resume, and divergence rollback (all off by
  /// default; see TrainRecoveryOptions).
  TrainRecoveryOptions recovery;

  /// Worker-thread budget for Fit() and batched prediction: 0 = hardware
  /// concurrency, 1 = exact single-threaded legacy behaviour (default),
  /// n > 1 = at most n-way. The dense/sparse kernels are bitwise
  /// deterministic at every budget (see edge/common/thread_pool.h), so any
  /// value reproduces the num_threads = 1 numbers; the one schedule that can
  /// change results — entity2vec Hogwild sharding — additionally requires
  /// entity2vec.deterministic = false.
  int num_threads = 1;

  /// Checks internal consistency.
  Status Validate() const;

  /// Convenience constructors for the Table IV ablations.
  static EdgeConfig NoGcn();
  static EdgeConfig SumAggregation();
  static EdgeConfig NoMixture();
};

}  // namespace edge::core

#endif  // EDGE_CORE_EDGE_CONFIG_H_
