#include "edge/core/train_checkpoint.h"

#include <cmath>
#include <cstdint>
#include <sstream>

#include "edge/common/file_util.h"
#include "edge/common/hash.h"

namespace edge::core {

namespace {

void WriteMatrix(std::ostream& os, const nn::Matrix& m) {
  os << m.rows() << " " << m.cols() << "\n";
  for (size_t r = 0; r < m.rows(); ++r) {
    for (size_t c = 0; c < m.cols(); ++c) {
      os << m.At(r, c) << (c + 1 == m.cols() ? '\n' : ' ');
    }
  }
}

/// Sizes a corrupt-but-checksum-valid file could still claim; reject before
/// they reach an allocation.
constexpr size_t kMaxMatrixDim = size_t{1} << 20;
constexpr size_t kMaxMatrixElems = size_t{1} << 26;
constexpr size_t kMaxMatrices = 4096;
constexpr size_t kMaxLossHistory = size_t{1} << 20;

Status ReadMatrix(std::istream& is, nn::Matrix* m, const char* what) {
  size_t rows = 0, cols = 0;
  is >> rows >> cols;
  if (is.fail()) return Status::InvalidArgument(std::string("truncated ") + what);
  if (rows == 0 || cols == 0 || rows > kMaxMatrixDim || cols > kMaxMatrixDim ||
      rows * cols > kMaxMatrixElems) {
    return Status::InvalidArgument(std::string("implausible dimensions for ") + what);
  }
  *m = nn::Matrix(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      double v = 0.0;
      is >> v;
      if (is.fail()) return Status::InvalidArgument(std::string("truncated ") + what);
      if (!std::isfinite(v)) {
        return Status::InvalidArgument(std::string("non-finite value in ") + what);
      }
      m->At(r, c) = v;
    }
  }
  return Status::Ok();
}

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

Status ExpectTag(std::istream& is, const char* tag) {
  std::string got;
  is >> got;
  if (is.fail() || got != tag) {
    return Status::InvalidArgument("expected '" + std::string(tag) + "' section, got '" +
                                   got + "'");
  }
  return Status::Ok();
}

}  // namespace

std::string TrainFingerprint(const EdgeConfig& config, size_t num_train_tweets,
                             size_t num_train_entities) {
  std::ostringstream fp;
  fp.precision(17);
  fp << "v1|" << config.display_name << "|seed=" << config.seed
     << "|epochs=" << config.epochs << "|batch=" << config.batch_size
     << "|M=" << config.num_components << "|dim=" << config.embedding_dim
     << "|auto=" << (config.auto_dim ? 1 : 0) << "|gcn=";
  for (size_t w : config.gcn_hidden) fp << w << ",";
  fp << "|attn=" << (config.use_attention ? 1 : 0)
     << "|decay=" << (config.lr_decay ? 1 : 0) << "|clip=" << config.grad_clip_norm
     << "|lr=" << config.adam.learning_rate << "|wd=" << config.adam.weight_decay
     << "|smin=" << config.sigma_min_km << "|rmax=" << config.rho_max
     << "|feat=" << static_cast<int>(config.feature_mode)
     << "|train=" << num_train_tweets << "|entities=" << num_train_entities;
  return fp.str();
}

std::string SerializeTrainState(const TrainState& state) {
  std::ostringstream os;
  os.precision(17);
  os << "EDGE-TRAINSTATE v1\n";
  os << "fingerprint " << state.fingerprint << "\n";
  os << "cursor " << state.next_epoch << " " << state.rollbacks_used << "\n";
  os << "scale " << state.lr_scale << " " << state.last_good_grad_norm << "\n";
  os << "rng " << state.rng.state << " " << state.rng.inc << " "
     << (state.rng.has_spare_normal ? 1 : 0) << " " << state.rng.spare_normal << "\n";
  os << "loss " << state.loss_history.size() << "\n";
  for (size_t i = 0; i < state.loss_history.size(); ++i) {
    os << state.loss_history[i]
       << (i + 1 == state.loss_history.size() ? "\n" : " ");
  }
  os << "params " << state.params.size() << "\n";
  for (const nn::Matrix& m : state.params) WriteMatrix(os, m);
  os << "adam " << state.adam.step_count << " " << state.adam.m.size() << "\n";
  for (const nn::Matrix& m : state.adam.m) WriteMatrix(os, m);
  for (const nn::Matrix& m : state.adam.v) WriteMatrix(os, m);
  std::string body = os.str();
  return body + "END " + ToHex16(Fnv1a64Bytes(body.data(), body.size())) + "\n";
}

Result<TrainState> ParseTrainState(const std::string& content) {
  // Checksum gate first: the file must end with exactly "END <16-hex>\n"
  // whose hash matches every preceding byte. Any strict truncation prefix of
  // a valid file fails here (the final newline is part of the contract, so
  // even a one-byte truncation is caught).
  if (content.empty() || content.back() != '\n') {
    return Status::InvalidArgument("train state not terminated by checksum line");
  }
  size_t body_end = content.rfind('\n', content.size() - 2);
  size_t last_line_start = body_end == std::string::npos ? 0 : body_end + 1;
  std::string last_line =
      content.substr(last_line_start, content.size() - 1 - last_line_start);
  if (last_line.size() != 4 + 16 || last_line.compare(0, 4, "END ") != 0) {
    return Status::InvalidArgument("train state missing END checksum line");
  }
  uint64_t want = 0;
  if (!FromHex16(last_line.substr(4), &want)) {
    return Status::InvalidArgument("malformed checksum hex");
  }
  uint64_t got = Fnv1a64Bytes(content.data(), last_line_start);
  if (got != want) {
    return Status::InvalidArgument("train state checksum mismatch (torn write?)");
  }

  std::istringstream is(content.substr(0, last_line_start));
  std::string magic, version;
  is >> magic >> version;
  if (is.fail() || magic != "EDGE-TRAINSTATE" || version != "v1") {
    return Status::InvalidArgument("bad train state header");
  }
  TrainState state;
  Status status = ExpectTag(is, "fingerprint");
  if (!status.ok()) return status;
  std::string fp_line;
  std::getline(is, fp_line);
  state.fingerprint = Trim(fp_line);
  if (state.fingerprint.empty()) {
    return Status::InvalidArgument("empty fingerprint");
  }

  status = ExpectTag(is, "cursor");
  if (!status.ok()) return status;
  is >> state.next_epoch >> state.rollbacks_used;
  if (is.fail() || state.next_epoch < 0 || state.rollbacks_used < 0) {
    return Status::InvalidArgument("bad epoch cursor");
  }

  status = ExpectTag(is, "scale");
  if (!status.ok()) return status;
  is >> state.lr_scale >> state.last_good_grad_norm;
  if (is.fail() || !(state.lr_scale > 0.0) || !std::isfinite(state.lr_scale) ||
      state.last_good_grad_norm < 0.0 || !std::isfinite(state.last_good_grad_norm)) {
    return Status::InvalidArgument("bad recovery scale line");
  }

  status = ExpectTag(is, "rng");
  if (!status.ok()) return status;
  int has_spare = 0;
  is >> state.rng.state >> state.rng.inc >> has_spare >> state.rng.spare_normal;
  if (is.fail() || (has_spare != 0 && has_spare != 1) ||
      !std::isfinite(state.rng.spare_normal)) {
    return Status::InvalidArgument("bad rng state");
  }
  state.rng.has_spare_normal = has_spare != 0;

  status = ExpectTag(is, "loss");
  if (!status.ok()) return status;
  size_t loss_count = 0;
  is >> loss_count;
  if (is.fail() || loss_count > kMaxLossHistory) {
    return Status::InvalidArgument("bad loss history length");
  }
  if (static_cast<int>(loss_count) != state.next_epoch) {
    return Status::InvalidArgument("loss history length disagrees with epoch cursor");
  }
  state.loss_history.resize(loss_count);
  for (double& v : state.loss_history) {
    is >> v;
    if (is.fail() || !std::isfinite(v)) {
      return Status::InvalidArgument("bad loss history value");
    }
  }

  status = ExpectTag(is, "params");
  if (!status.ok()) return status;
  size_t num_params = 0;
  is >> num_params;
  if (is.fail() || num_params == 0 || num_params > kMaxMatrices) {
    return Status::InvalidArgument("bad param count");
  }
  state.params.resize(num_params);
  for (nn::Matrix& m : state.params) {
    status = ReadMatrix(is, &m, "param matrix");
    if (!status.ok()) return status;
  }

  status = ExpectTag(is, "adam");
  if (!status.ok()) return status;
  size_t num_moments = 0;
  long long step_count = 0;
  is >> step_count >> num_moments;
  if (is.fail() || step_count < 0 || num_moments != num_params) {
    return Status::InvalidArgument("bad adam header");
  }
  state.adam.step_count = step_count;
  state.adam.m.resize(num_moments);
  state.adam.v.resize(num_moments);
  for (nn::Matrix& m : state.adam.m) {
    status = ReadMatrix(is, &m, "adam first moment");
    if (!status.ok()) return status;
  }
  for (nn::Matrix& m : state.adam.v) {
    status = ReadMatrix(is, &m, "adam second moment");
    if (!status.ok()) return status;
  }
  for (size_t i = 0; i < num_moments; ++i) {
    if (state.adam.m[i].rows() != state.params[i].rows() ||
        state.adam.m[i].cols() != state.params[i].cols() ||
        state.adam.v[i].rows() != state.params[i].rows() ||
        state.adam.v[i].cols() != state.params[i].cols()) {
      return Status::InvalidArgument("adam moment shape disagrees with params");
    }
  }
  return state;
}

Status SaveTrainStateAtomic(const std::string& path, const TrainState& state) {
  const std::string serialized = SerializeTrainState(state);
  // Write -> read back -> byte-compare, under retry: an injected short write
  // returns Ok from WriteFileAtomic (a torn file the OS reported durable),
  // so the verification pass is what actually guarantees the file on disk
  // is loadable. Byte equality is strictly stronger than re-parsing.
  return RetryWithBackoff(/*attempts=*/4, /*base_backoff_ms=*/1.0, [&]() {
    Status status = WriteFileAtomic(path, serialized, "io.checkpoint.write");
    if (!status.ok()) return status;
    std::string readback;
    status = ReadFileToString(path, &readback, "io.checkpoint.verify");
    if (!status.ok()) return status;
    if (readback != serialized) {
      return Status::Internal("checkpoint verification mismatch (torn write) at " +
                              path);
    }
    return Status::Ok();
  });
}

Result<TrainState> LoadTrainState(const std::string& path) {
  std::string content;
  Status status = RetryWithBackoff(/*attempts=*/4, /*base_backoff_ms=*/1.0, [&]() {
    return ReadFileToString(path, &content, "io.checkpoint.read");
  });
  if (!status.ok()) return status;
  return ParseTrainState(content);
}

}  // namespace edge::core
