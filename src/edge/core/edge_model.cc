#include "edge/core/edge_model.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <limits>
#include <numeric>
#include <ostream>

#include "edge/common/file_util.h"
#include "edge/common/math_util.h"
#include "edge/core/model_store.h"
#include "edge/common/rng.h"
#include "edge/common/stopwatch.h"
#include "edge/common/thread_pool.h"
#include "edge/core/train_checkpoint.h"
#include "edge/fault/fault.h"
#include "edge/nn/autodiff.h"
#include "edge/nn/init.h"
#include "edge/nn/mdn.h"
#include "edge/nn/optimizer.h"
#include "edge/obs/log.h"
#include "edge/obs/metrics.h"
#include "edge/obs/trace.h"

namespace edge::core {

namespace {

/// Converts activated MDN parameters (already in the km plane) into the geo
/// mixture object.
geo::GaussianMixture2d ToGeoMixture(const nn::MdnMixture& mix) {
  std::vector<geo::Gaussian2d> components;
  std::vector<double> weights;
  for (size_t m = 0; m < mix.num_components(); ++m) {
    components.emplace_back(geo::PlanePoint{mix.mean_x[m], mix.mean_y[m]},
                            mix.sigma_x[m], mix.sigma_y[m], mix.rho[m]);
    weights.push_back(std::max(mix.weight[m], 1e-12));
  }
  return geo::GaussianMixture2d(std::move(components), std::move(weights));
}

}  // namespace

EdgeModel::EdgeModel(EdgeConfig config) : config_(std::move(config)) {
  Status status = config_.Validate();
  EDGE_CHECK(status.ok()) << status.ToString();
}

const geo::LocalProjection& EdgeModel::projection() const {
  EDGE_CHECK(projection_ != nullptr) << "model not fitted";
  return *projection_;
}

size_t EdgeModel::NodeIdOf(std::string_view name) const {
  if (store_ != nullptr) {
    size_t id = store_->NodeId(name);
    return id == MmapModelStore::kNotFound ? graph::EntityGraph::kNotFound : id;
  }
  return graph_.NodeId(name);
}

std::string_view EdgeModel::NodeNameOf(size_t id) const {
  if (store_ != nullptr) return store_->NodeName(id);
  return graph_.NodeName(id);
}

size_t EdgeModel::num_entities() const {
  return store_ != nullptr ? store_->num_nodes() : graph_.num_nodes();
}

size_t EdgeModel::hidden_dim() const {
  return store_ != nullptr ? store_->hidden() : smoothed_embeddings_.cols();
}

nn::ConstRowSpan EdgeModel::EmbeddingRowOf(size_t node,
                                           std::vector<double>* scratch) const {
  if (store_ != nullptr) return store_->EmbeddingRow(node, scratch);
  return smoothed_embeddings_.RowSpan(node);
}

std::vector<size_t> EdgeModel::GraphIds(const data::ProcessedTweet& tweet) const {
  std::vector<size_t> ids;
  for (const text::Entity& e : tweet.entities) {
    size_t id = NodeIdOf(e.name);
    if (id != graph::EntityGraph::kNotFound) ids.push_back(id);
  }
  // Canonical ascending-id order: attention/aggregation are mathematically
  // permutation-invariant, but fixing the floating-point summation order
  // makes the prediction a pure function of the entity set (not the mention
  // order) — the property the serve-layer cache keys on.
  std::sort(ids.begin(), ids.end());
  return ids;
}

void EdgeModel::Fit(const data::ProcessedDataset& dataset) {
  EDGE_CHECK(!fitted_) << "Fit() may only be called once";
  EDGE_CHECK(!dataset.train.empty()) << "empty training split";
  fitted_ = true;
  EDGE_TRACE_SPAN("edge.core.fit");
  Stopwatch fit_watch;
  EDGE_LOG(INFO) << "fit start" << obs::Kv("model", config_.display_name)
                 << obs::Kv("train", dataset.train.size())
                 << obs::Kv("entities", dataset.train_entity_names.size())
                 << obs::Kv("epochs", config_.epochs);
  // Scope the global kernel budget to this model's setting for the whole fit
  // (dense matmul, CSR propagation and their backward passes all consult it).
  ScopedNumThreads scoped_threads(config_.num_threads);
  Rng rng(config_.seed);

  if (config_.auto_dim) {
    // Scale capacity with the entity vocabulary (see EdgeConfig::auto_dim).
    size_t width = dataset.train_entity_names.size() >= 300 ? 96 : 64;
    config_.embedding_dim = width;
    for (size_t& layer_width : config_.gcn_hidden) layer_width = width;
  }

  // --- Stage 1: entity2vec semantic embeddings (§III-A1). ---
  embedding::Entity2VecOptions e2v_options = config_.entity2vec;
  e2v_options.dim = config_.embedding_dim;
  e2v_options.seed = config_.seed ^ 0x9e3779b97f4a7c15ULL;
  // The model-level budget wins; whether shards actually run concurrently is
  // still gated by e2v_options.deterministic (default: stay reproducible).
  e2v_options.num_threads = config_.num_threads;
  entity2vec_ = std::make_unique<embedding::Entity2Vec>(e2v_options);
  {
    EDGE_TRACE_SPAN("edge.core.fit.entity2vec");
    std::vector<std::vector<std::string>> corpus;
    corpus.reserve(dataset.train.size());
    for (const data::ProcessedTweet& t : dataset.train) corpus.push_back(t.tokens);
    entity2vec_->Train(corpus);
  }

  // --- Stage 2: co-occurrence entity graph (§III-A2). ---
  {
    EDGE_TRACE_SPAN("edge.core.fit.entity_graph");
    std::vector<std::vector<std::string>> entity_sets;
    entity_sets.reserve(dataset.train.size());
    for (const data::ProcessedTweet& t : dataset.train) {
      std::vector<std::string> names;
      names.reserve(t.entities.size());
      for (const text::Entity& e : t.entities) names.push_back(e.name);
      entity_sets.push_back(std::move(names));
    }
    graph_ = graph::EntityGraph::Build(entity_sets);
  }
  normalized_adjacency_ = graph_.NormalizedAdjacency();

  // Node features: entity2vec rows (the paper's design) or one-hot identity
  // (the kIdentity ablation). Entities the embedder never saw (e.g.
  // capitalization-chunked names outside the token stream) get small noise.
  size_t feature_dim = config_.feature_mode == EdgeConfig::FeatureMode::kIdentity
                           ? graph_.num_nodes()
                           : config_.embedding_dim;
  nn::Matrix features(graph_.num_nodes(), feature_dim);
  if (config_.feature_mode == EdgeConfig::FeatureMode::kIdentity) {
    for (size_t node = 0; node < graph_.num_nodes(); ++node) {
      features.At(node, node) = 1.0;
    }
  } else {
    for (size_t node = 0; node < graph_.num_nodes(); ++node) {
      std::vector<double> emb = entity2vec_->EmbeddingOf(graph_.NodeName(node));
      if (emb.empty()) {
        for (size_t d = 0; d < feature_dim; ++d) {
          features.At(node, d) = rng.Normal(0.0, 0.01);
        }
      } else {
        for (size_t d = 0; d < feature_dim; ++d) features.At(node, d) = emb[d];
      }
    }
  }

  // --- Stage 3: targets in the local km plane. ---
  projection_ = std::make_unique<geo::LocalProjection>(dataset.region.Center());
  std::vector<geo::PlanePoint> targets;
  targets.reserve(dataset.train.size());
  for (const data::ProcessedTweet& t : dataset.train) {
    targets.push_back(projection_->ToPlane(t.location));
  }
  {
    double sx = 0.0;
    double sy = 0.0;
    for (const geo::PlanePoint& p : targets) {
      sx += p.x;
      sy += p.y;
    }
    fallback_mean_ = {sx / static_cast<double>(targets.size()),
                      sy / static_cast<double>(targets.size())};
    double var = 0.0;
    for (const geo::PlanePoint& p : targets) {
      var += (p.x - fallback_mean_.x) * (p.x - fallback_mean_.x) +
             (p.y - fallback_mean_.y) * (p.y - fallback_mean_.y);
    }
    fallback_sigma_km_ =
        std::max(1.0, std::sqrt(var / (2.0 * static_cast<double>(targets.size()))));
    // Standardize: train the MDN in units of the data spread (see header).
    coord_scale_km_ = fallback_sigma_km_;
    for (geo::PlanePoint& p : targets) {
      p.x /= coord_scale_km_;
      p.y /= coord_scale_km_;
    }
  }

  // --- Stage 4: trainable parameters. ---
  std::vector<size_t> dims = {feature_dim};
  for (size_t width : config_.gcn_hidden) dims.push_back(width);
  graph::GcnStack gcn(dims, &rng);
  size_t hidden = dims.back();
  size_t theta_dim = 6 * config_.num_components;

  nn::Var attn_q = nn::Param(nn::XavierUniform(hidden, 1, &rng));
  nn::Var attn_b = nn::Param(nn::Matrix::Zeros(1, 1));
  nn::Var head_w = nn::Param(nn::XavierUniform(hidden, theta_dim, &rng));
  nn::Var head_b = nn::Param(nn::Matrix::Zeros(1, theta_dim));
  {
    // Spread initial component means over the training extent and start the
    // spreads at ~2 km so early responsibilities are informative.
    double min_x = targets[0].x, max_x = targets[0].x;
    double min_y = targets[0].y, max_y = targets[0].y;
    for (const geo::PlanePoint& p : targets) {
      min_x = std::min(min_x, p.x);
      max_x = std::max(max_x, p.x);
      min_y = std::min(min_y, p.y);
      max_y = std::max(max_y, p.y);
    }
    size_t mc = config_.num_components;
    double sigma_init = SoftplusInverse(2.0 / coord_scale_km_);
    for (size_t m = 0; m < mc; ++m) {
      head_b->value.At(0, m) = rng.Uniform(min_x, max_x);
      head_b->value.At(0, mc + m) = rng.Uniform(min_y, max_y);
      head_b->value.At(0, 2 * mc + m) = sigma_init;
      head_b->value.At(0, 3 * mc + m) = sigma_init;
      // rho and pi raw parameters start at zero.
    }
  }

  std::vector<nn::Var> params = gcn.Params();
  if (config_.use_attention) {
    // The SUM ablation never puts q/b on the tape; handing the optimizer
    // parameters that receive no gradients would trip its safety check.
    params.push_back(attn_q);
    params.push_back(attn_b);
  }
  params.push_back(head_w);
  params.push_back(head_b);
  nn::Adam adam(params, config_.adam);

  nn::MdnOptions mdn_options;
  mdn_options.num_components = config_.num_components;
  mdn_options.sigma_min = config_.sigma_min_km / coord_scale_km_;
  mdn_options.rho_max = config_.rho_max;

  // Precompute each tweet's in-graph node ids (training tweets always have
  // at least one entity by the §IV-A filter).
  std::vector<std::vector<size_t>> tweet_ids(dataset.train.size());
  for (size_t i = 0; i < dataset.train.size(); ++i) {
    tweet_ids[i] = GraphIds(dataset.train[i]);
    EDGE_CHECK(!tweet_ids[i].empty()) << "training tweet with no graph entity";
  }

  // --- Stage 5: end-to-end training (Eq. 13) with crash-safe recovery. ---
  // Per-epoch telemetry: the NLL/grad-norm series are what convergence tests
  // and the MDN-baseline comparisons read back (metric scheme in DESIGN.md).
  obs::Registry& registry = obs::Registry::Global();
  obs::Series* nll_series = registry.GetSeries("edge.core.epoch_nll");
  obs::Series* grad_norm_series = registry.GetSeries("edge.core.epoch_grad_norm");
  obs::Histogram* epoch_seconds = registry.GetHistogram("edge.core.epoch_seconds");
  obs::Counter* rollback_counter = registry.GetCounter("edge.core.rollbacks");
  obs::Gauge* lr_scale_gauge = registry.GetGauge("edge.core.lr_scale");
  // Sliding-window view of training progress, for the --metrics-export live
  // snapshot: recent epoch times (epochs can take whole seconds, so the
  // buckets stretch well past the latency defaults) and a tweets-trained
  // counter whose windowed rate is the live throughput in tweets/second.
  obs::WindowedHistogram::Options epoch_window_options;
  epoch_window_options.bounds = {0.01, 0.05, 0.1, 0.25, 0.5, 1.0,
                                 2.5,  5.0,  10.0, 30.0, 60.0};
  obs::WindowedHistogram* window_epoch_seconds = registry.GetWindowedHistogram(
      "edge.core.window.epoch_seconds", epoch_window_options);
  obs::WindowedCounter* window_tweets =
      registry.GetWindowedCounter("edge.core.window.tweets_trained");

  // Recovery bookkeeping (DESIGN.md §12). Stages 1-4 above are pure functions
  // of (dataset, seed), so a checkpoint only needs the mutable training state:
  // parameter values, Adam moments, the RNG, the epoch cursor, and the
  // rollback ledger. capture/restore move all of it atomically, which serves
  // both the on-disk checkpoint and the in-memory divergence snapshot.
  const TrainRecoveryOptions& recovery = config_.recovery;
  const std::string checkpoint_path =
      recovery.checkpoint_dir.empty() ? ""
                                      : recovery.checkpoint_dir + "/train_state.edge";
  const std::string fingerprint =
      TrainFingerprint(config_, dataset.train.size(),
                       dataset.train_entity_names.size());
  double lr_scale = 1.0;
  int rollbacks_used = 0;
  double last_good_grad_norm = 0.0;
  int start_epoch = 0;

  auto capture = [&](int next_epoch) {
    TrainState state;
    state.fingerprint = fingerprint;
    state.next_epoch = next_epoch;
    state.lr_scale = lr_scale;
    state.rollbacks_used = rollbacks_used;
    state.last_good_grad_norm = last_good_grad_norm;
    state.rng = rng.SaveState();
    state.loss_history = loss_history_;
    state.params.reserve(params.size());
    for (const nn::Var& p : params) state.params.push_back(p->value);
    state.adam = adam.ExportState();
    return state;
  };
  auto shapes_match = [&](const TrainState& state) {
    if (state.params.size() != params.size()) return false;
    for (size_t i = 0; i < params.size(); ++i) {
      if (state.params[i].rows() != params[i]->value.rows() ||
          state.params[i].cols() != params[i]->value.cols()) {
        return false;
      }
    }
    return true;
  };
  auto restore = [&](const TrainState& state) {
    lr_scale = state.lr_scale;
    rollbacks_used = state.rollbacks_used;
    last_good_grad_norm = state.last_good_grad_norm;
    rng.RestoreState(state.rng);
    loss_history_ = state.loss_history;
    for (size_t i = 0; i < params.size(); ++i) params[i]->value = state.params[i];
    adam.ImportState(state.adam);
  };

  if (!checkpoint_path.empty() && recovery.resume && FileExists(checkpoint_path)) {
    Result<TrainState> loaded = LoadTrainState(checkpoint_path);
    if (!loaded.ok()) {
      EDGE_LOG(WARN) << "checkpoint unusable; training from scratch"
                     << obs::Kv("path", checkpoint_path)
                     << obs::Kv("error", loaded.status().ToString());
    } else if (loaded.value().fingerprint != fingerprint) {
      EDGE_LOG(WARN) << "checkpoint fingerprint mismatch; training from scratch"
                     << obs::Kv("path", checkpoint_path);
    } else if (!shapes_match(loaded.value()) ||
               loaded.value().next_epoch > config_.epochs) {
      EDGE_LOG(WARN) << "checkpoint shape mismatch; training from scratch"
                     << obs::Kv("path", checkpoint_path);
    } else {
      restore(loaded.value());
      start_epoch = loaded.value().next_epoch;
      registry.GetCounter("edge.core.resumes")->Increment();
      obs::RecordInstant("edge.core.resume");
      EDGE_LOG(INFO) << "resumed from checkpoint" << obs::Kv("path", checkpoint_path)
                     << obs::Kv("epoch", start_epoch)
                     << obs::Kv("rollbacks_used", rollbacks_used);
    }
  }
  lr_scale_gauge->Set(lr_scale);

  Stopwatch epoch_watch;
  std::vector<size_t> order(dataset.train.size());
  TrainState last_good = capture(start_epoch);
  int epochs_this_run = 0;
  int epoch = start_epoch;
  while (epoch < config_.epochs) {
    EDGE_TRACE_SPAN("edge.core.fit.epoch");
    // lr_scale is 1.0 until a rollback, so the unfaulted schedule is bitwise
    // the legacy one (x * 1.0 == x for finite x).
    double lr = config_.adam.learning_rate * lr_scale;
    if (config_.lr_decay) {
      double progress = static_cast<double>(epoch) / static_cast<double>(config_.epochs);
      lr *= 1.0 - 0.9 * progress;
    }
    adam.set_learning_rate(lr);
    // Each epoch's visit order is shuffled from the identity permutation, not
    // from the previous epoch's order: the order must be a pure function of
    // the RNG state so a resumed run reproduces the batch composition the
    // uninterrupted run would have used.
    std::iota(order.begin(), order.end(), 0);
    rng.Shuffle(&order);
    double epoch_loss = 0.0;
    double epoch_grad_norm = 0.0;
    size_t batches = 0;
    for (size_t start = 0; start < order.size(); start += config_.batch_size) {
      size_t end = std::min(order.size(), start + config_.batch_size);
      size_t batch = end - start;

      nn::Var x = nn::Constant(features);
      nn::Var h = gcn.Forward(&normalized_adjacency_, x);

      std::vector<nn::Var> tweet_vectors;
      tweet_vectors.reserve(batch);
      nn::Matrix batch_targets(batch, 2);
      for (size_t b = 0; b < batch; ++b) {
        size_t tweet = order[start + b];
        nn::Var hk = nn::GatherRows(h, tweet_ids[tweet]);
        nn::Var z;
        if (config_.use_attention) {
          nn::Var scores = nn::Relu(nn::AddRowBroadcast(nn::MatMul(hk, attn_q), attn_b));
          nn::Var weights = nn::SoftmaxCol(scores);
          z = nn::TransposedMatMul(weights, hk);
        } else {
          z = nn::MatMul(nn::Constant(nn::Matrix::Constant(1, tweet_ids[tweet].size(), 1.0)),
                         hk);
        }
        tweet_vectors.push_back(z);
        batch_targets.At(b, 0) = targets[tweet].x;
        batch_targets.At(b, 1) = targets[tweet].y;
      }
      EDGE_TRACE_SPAN("edge.core.fit.mdn_head");
      nn::Var z_batch = nn::ConcatRows(tweet_vectors);
      nn::Var theta = nn::AddRowBroadcast(nn::MatMul(z_batch, head_w), head_b);
      nn::Var loss = nn::BivariateMdnLoss(theta, batch_targets, mdn_options);
      nn::Backward(loss);
      epoch_grad_norm += nn::ClipGradientNorm(params, config_.grad_clip_norm);
      adam.Step();
      epoch_loss += loss->value.At(0, 0);
      ++batches;
    }
    double mean_nll = epoch_loss / static_cast<double>(batches);
    double mean_grad_norm = epoch_grad_norm / static_cast<double>(batches);
    if (EDGE_FAULT_POINT("train.diverge") == fault::Action::kError) {
      mean_nll = std::numeric_limits<double>::quiet_NaN();  // Divergence drill.
    }

    // Divergence sentinel: a non-finite epoch (or a grad-norm spike when the
    // spike factor is configured) rolls back to the last good snapshot, halves
    // the learning rate, and retries — bounded by max_rollbacks, after which
    // the last good state is kept. Fit never aborts on divergence.
    bool diverged =
        !std::isfinite(mean_nll) || !std::isfinite(mean_grad_norm) ||
        (recovery.grad_spike_factor > 0.0 && last_good_grad_norm > 0.0 &&
         mean_grad_norm > recovery.grad_spike_factor * last_good_grad_norm);
    if (diverged) {
      if (rollbacks_used < recovery.max_rollbacks) {
        restore(last_good);
        lr_scale *= 0.5;
        ++rollbacks_used;
        last_good.lr_scale = lr_scale;
        last_good.rollbacks_used = rollbacks_used;
        rollback_counter->Increment();
        obs::RecordInstant("edge.core.rollback");
        lr_scale_gauge->Set(lr_scale);
        EDGE_LOG(WARN) << "epoch diverged; rolled back"
                       << obs::Kv("epoch", epoch) << obs::Kv("nll", mean_nll)
                       << obs::Kv("grad_norm", mean_grad_norm)
                       << obs::Kv("lr_scale", lr_scale)
                       << obs::Kv("rollbacks_used", rollbacks_used);
        epoch = last_good.next_epoch;
        continue;
      }
      registry.GetCounter("edge.core.divergence_giveups")->Increment();
      obs::RecordInstant("edge.core.divergence_giveup");
      EDGE_LOG(ERROR) << "divergence rollback budget exhausted; keeping last "
                         "good state"
                      << obs::Kv("epoch", epoch)
                      << obs::Kv("rollbacks_used", rollbacks_used);
      restore(last_good);
      break;
    }

    double seconds = epoch_watch.LapSeconds();
    loss_history_.push_back(mean_nll);
    nll_series->Append(mean_nll);
    grad_norm_series->Append(mean_grad_norm);
    epoch_seconds->Observe(seconds);
    window_epoch_seconds->Observe(seconds);
    window_tweets->Increment(static_cast<int64_t>(order.size()));
    last_good_grad_norm = mean_grad_norm;
    EDGE_LOG(DEBUG) << "epoch done" << obs::Kv("epoch", epoch)
                    << obs::Kv("nll", mean_nll)
                    << obs::Kv("grad_norm", mean_grad_norm)
                    << obs::Kv("sec", seconds);
    ++epoch;
    ++epochs_this_run;
    last_good = capture(epoch);

    bool stop_requested =
        recovery.stop_flag != nullptr &&
        recovery.stop_flag->load(std::memory_order_relaxed);
    bool run_budget_done = recovery.max_epochs_per_run > 0 &&
                           epochs_this_run >= recovery.max_epochs_per_run;
    if (!checkpoint_path.empty() &&
        (epoch % recovery.checkpoint_every == 0 || epoch == config_.epochs ||
         stop_requested || run_budget_done)) {
      Status status = SaveTrainStateAtomic(checkpoint_path, last_good);
      if (status.ok()) {
        registry.GetCounter("edge.core.checkpoints_written")->Increment();
        obs::RecordInstant("edge.core.checkpoint");
      } else {
        // Checkpointing is best-effort: a persistently failing disk must not
        // kill an otherwise healthy training run.
        registry.GetCounter("edge.core.checkpoint_failures")->Increment();
        obs::RecordInstant("edge.core.checkpoint_failure");
        EDGE_LOG(WARN) << "checkpoint write failed"
                       << obs::Kv("path", checkpoint_path)
                       << obs::Kv("error", status.ToString());
      }
    }
    if (stop_requested || run_budget_done) {
      EDGE_LOG(INFO) << "training stopped gracefully"
                     << obs::Kv("epoch", epoch)
                     << obs::Kv("reason", stop_requested ? "stop_flag" : "run_budget");
      break;
    }
  }

  // --- Stage 6: cache dense inference state. ---
  {
    EDGE_TRACE_SPAN("edge.core.fit.cache_inference");
    nn::Var x = nn::Constant(features);
    nn::Var h = gcn.Forward(&normalized_adjacency_, x);
    smoothed_embeddings_ = h->value;
  }
  attention_q_ = attn_q->value;
  attention_b_ = attn_b->value.At(0, 0);
  head_w_ = head_w->value;
  head_b_ = head_b->value;

  double fit_seconds = fit_watch.ElapsedSeconds();
  registry.GetCounter("edge.core.fit_runs")->Increment();
  registry.GetGauge("edge.core.fit_seconds")->Set(fit_seconds);
  // loss_history_ can be empty when every attempted epoch diverged and the
  // rollback budget restored the initial state.
  double nan = std::numeric_limits<double>::quiet_NaN();
  EDGE_LOG(INFO) << "fit done" << obs::Kv("model", config_.display_name)
                 << obs::Kv("epochs_done", loss_history_.size())
                 << obs::Kv("first_nll",
                            loss_history_.empty() ? nan : loss_history_.front())
                 << obs::Kv("final_nll",
                            loss_history_.empty() ? nan : loss_history_.back())
                 << obs::Kv("sec", fit_seconds);
}

EdgePrediction EdgeModel::PredictFromIds(const std::vector<size_t>& ids,
                                         const std::vector<std::string>& names) const {
  EdgePrediction prediction;
  if (ids.empty()) {
    prediction.used_fallback = true;
    prediction.mixture = geo::GaussianMixture2d(
        {geo::Gaussian2d::Isotropic(fallback_mean_, fallback_sigma_km_)}, {1.0});
    prediction.point = projection_->ToLatLon(fallback_mean_);
    return prediction;
  }

  size_t hidden = hidden_dim();
  size_t k_count = ids.size();

  // Gather the tweet's embedding rows once. Dense and fp64-store rows are
  // read in place (for a mapped store that is the zero-copy path — the
  // pointers alias the file mapping); quantized stores decode into one
  // packed scratch buffer. The arithmetic below is unchanged from the dense
  // path, so a fp64 store is bitwise-identical to the text checkpoint.
  std::vector<const double*> rows(k_count);
  std::vector<double> scratch;
  if (store_ != nullptr && !store_->zero_copy()) {
    scratch.resize(k_count * hidden);
    for (size_t k = 0; k < k_count; ++k) {
      store_->DequantizeRow(ids[k], &scratch[k * hidden]);
      rows[k] = &scratch[k * hidden];
    }
  } else if (store_ != nullptr) {
    for (size_t k = 0; k < k_count; ++k) {
      rows[k] = store_->EmbeddingRow(ids[k], nullptr).data;
    }
  } else {
    for (size_t k = 0; k < k_count; ++k) {
      rows[k] = smoothed_embeddings_.row_data(ids[k]);
    }
  }

  // Attention scores (Eq. 2-3) over the gathered rows.
  std::vector<double> weights(k_count, 1.0);
  if (config_.use_attention) {
    for (size_t k = 0; k < k_count; ++k) {
      double s = attention_b_;
      const double* row = rows[k];
      for (size_t d = 0; d < hidden; ++d) s += row[d] * attention_q_.At(d, 0);
      weights[k] = std::max(s, 0.0);
    }
    SoftmaxInPlace(&weights);
  }

  // Aggregated tweet embedding (Eq. 4) and MDN head (Eq. 7).
  std::vector<double> z(hidden, 0.0);
  for (size_t k = 0; k < k_count; ++k) {
    const double* row = rows[k];
    for (size_t d = 0; d < hidden; ++d) z[d] += weights[k] * row[d];
  }
  size_t theta_dim = head_b_.cols();
  std::vector<double> theta(theta_dim);
  for (size_t j = 0; j < theta_dim; ++j) {
    double v = head_b_.At(0, j);
    for (size_t d = 0; d < hidden; ++d) v += z[d] * head_w_.At(d, j);
    theta[j] = v;
  }

  nn::MdnOptions mdn_options;
  mdn_options.num_components = config_.num_components;
  mdn_options.sigma_min = config_.sigma_min_km / coord_scale_km_;
  mdn_options.rho_max = config_.rho_max;
  nn::MdnMixture mix = nn::ActivateMdnRow(theta.data(), mdn_options);
  // Rescale from standardized training units back to kilometres.
  for (size_t m = 0; m < mix.num_components(); ++m) {
    mix.mean_x[m] *= coord_scale_km_;
    mix.mean_y[m] *= coord_scale_km_;
    mix.sigma_x[m] *= coord_scale_km_;
    mix.sigma_y[m] *= coord_scale_km_;
  }
  prediction.mixture = ToGeoMixture(mix);
  prediction.point = projection_->ToLatLon(prediction.mixture.FindMode());
  prediction.attention.reserve(k_count);
  for (size_t k = 0; k < k_count; ++k) {
    prediction.attention.push_back({names[k], weights[k]});
  }
  return prediction;
}

EdgePrediction EdgeModel::Predict(const data::ProcessedTweet& tweet) const {
  EDGE_CHECK(fitted_) << "Predict() before Fit()";
  std::vector<std::pair<size_t, std::string>> known;
  for (const text::Entity& e : tweet.entities) {
    size_t id = NodeIdOf(e.name);
    if (id != graph::EntityGraph::kNotFound) known.emplace_back(id, e.name);
  }
  // Canonical ascending-id order (see GraphIds): the prediction depends only
  // on the entity set, never on mention order.
  std::sort(known.begin(), known.end());
  std::vector<size_t> ids;
  std::vector<std::string> names;
  ids.reserve(known.size());
  names.reserve(known.size());
  for (auto& [id, name] : known) {
    ids.push_back(id);
    names.push_back(std::move(name));
  }
  return PredictFromIds(ids, names);
}

EdgePrediction EdgeModel::FallbackPrediction() const {
  EDGE_CHECK(fitted_) << "FallbackPrediction() before Fit()";
  return PredictFromIds({}, {});
}

void EdgeModel::set_num_threads(int n) {
  EDGE_CHECK_GE(n, 0) << "num_threads must be >= 0 (0 = hardware)";
  config_.num_threads = n;
}

void EdgeModel::PredictBatch(const std::vector<data::ProcessedTweet>& tweets,
                             std::vector<EdgePrediction>* out) const {
  EDGE_CHECK(out != nullptr);
  EDGE_CHECK(fitted_) << "PredictBatch() before Fit()";
  EDGE_TRACE_SPAN("edge.core.predict_batch");
  out->assign(tweets.size(), EdgePrediction{});
  ScopedNumThreads scoped_threads(config_.num_threads);
  // Tweets are independent reads of fitted state; indexed writes keep the
  // output identical to the serial loop at any budget.
  ParallelFor(0, tweets.size(), /*grain=*/8, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) (*out)[i] = Predict(tweets[i]);
  });
}

bool EdgeModel::PredictPoint(const data::ProcessedTweet& tweet, geo::LatLon* out) {
  EDGE_CHECK(out != nullptr);
  *out = Predict(tweet).point;
  return true;
}

void EdgeModel::PredictPoints(const std::vector<data::ProcessedTweet>& tweets,
                              std::vector<geo::LatLon>* points,
                              std::vector<uint8_t>* predicted) {
  EDGE_CHECK(points != nullptr && predicted != nullptr);
  EDGE_CHECK(fitted_) << "PredictPoints() before Fit()";
  EDGE_TRACE_SPAN("edge.core.predict_points");
  static obs::Histogram* batch_seconds =
      obs::Registry::Global().GetHistogram("edge.core.predict_points_seconds");
  obs::ScopedTimer timer(batch_seconds);
  obs::Registry::Global()
      .GetCounter("edge.core.tweets_predicted")
      ->Increment(static_cast<int64_t>(tweets.size()));
  points->assign(tweets.size(), geo::LatLon{});
  predicted->assign(tweets.size(), 1);  // EDGE never abstains (fallback prior).
  ScopedNumThreads scoped_threads(config_.num_threads);
  // Tweets are independent reads of fitted state; indexed writes keep the
  // output identical to the serial loop at any budget.
  ParallelFor(0, tweets.size(), /*grain=*/8, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) (*points)[i] = Predict(tweets[i]).point;
  });
}

Status EdgeModel::SaveInference(std::ostream* out) const {
  EDGE_CHECK(out != nullptr);
  if (!fitted_) return Status::FailedPrecondition("model not fitted");
  std::ostream& os = *out;
  os.precision(17);
  os << "EDGE-INFERENCE v1\n";
  os << config_.display_name << "\n";
  os << config_.num_components << " " << config_.sigma_min_km << " " << config_.rho_max
     << " " << (config_.use_attention ? 1 : 0) << "\n";
  os << projection_->origin().lat << " " << projection_->origin().lon << "\n";
  os << num_entities() << " " << hidden_dim() << "\n";
  for (size_t n = 0; n < num_entities(); ++n) os << NodeNameOf(n) << "\n";
  auto write_matrix = [&os](const nn::Matrix& m) {
    os << m.rows() << " " << m.cols() << "\n";
    for (size_t r = 0; r < m.rows(); ++r) {
      for (size_t c = 0; c < m.cols(); ++c) {
        os << m.At(r, c) << (c + 1 == m.cols() ? '\n' : ' ');
      }
    }
  };
  // Embeddings go through the row-gather path so store-backed models (fp64
  // bitwise, quantized at their decoded values) convert back to canonical
  // text without materializing a dense matrix copy.
  {
    os << num_entities() << " " << hidden_dim() << "\n";
    std::vector<double> scratch;
    for (size_t r = 0; r < num_entities(); ++r) {
      nn::ConstRowSpan row = EmbeddingRowOf(r, &scratch);
      for (size_t c = 0; c < row.cols; ++c) {
        os << row[c] << (c + 1 == row.cols ? '\n' : ' ');
      }
    }
  }
  write_matrix(attention_q_);
  os << attention_b_ << "\n";
  write_matrix(head_w_);
  write_matrix(head_b_);
  os << fallback_mean_.x << " " << fallback_mean_.y << " " << fallback_sigma_km_ << "\n";
  os << coord_scale_km_ << "\n";
  if (!os.good()) return Status::Internal("stream write failed");
  return Status::Ok();
}

Result<std::unique_ptr<EdgeModel>> EdgeModel::LoadInference(std::istream* in) {
  // A serving process restarts on a bad checkpoint, so every malformation —
  // truncation, wrong magic, dimension mismatch, absurd sizes, non-finite
  // parameters — must come back as a Status, never an EDGE_CHECK abort or a
  // garbage-initialized matrix. Each read below is therefore checked before
  // its value is used (in particular before any allocation is sized by it).
  EDGE_CHECK(in != nullptr);
  std::istream& is = *in;
  std::string magic, version;
  is >> magic >> version;
  if (is.fail() || magic != "EDGE-INFERENCE" || version != "v1") {
    return Status::InvalidArgument("bad header: " + magic + " " + version);
  }
  EdgeConfig config;
  int use_attention = 1;
  is >> config.display_name;
  is >> config.num_components >> config.sigma_min_km >> config.rho_max >> use_attention;
  if (is.fail()) return Status::InvalidArgument("truncated config header");
  config.use_attention = use_attention != 0;
  // A corrupt config must not reach the EdgeModel constructor: its Validate()
  // failure is an EDGE_CHECK abort there. Bound num_components explicitly —
  // a negative token wraps to a huge size_t that Validate() would accept.
  constexpr size_t kMaxComponents = 1024;
  if (config.num_components == 0 || config.num_components > kMaxComponents) {
    return Status::InvalidArgument("implausible mixture component count");
  }
  Status config_status = config.Validate();
  if (!config_status.ok()) {
    return Status::InvalidArgument("corrupt checkpoint config: " +
                                   config_status.ToString());
  }
  double lat = 0.0, lon = 0.0;
  is >> lat >> lon;
  size_t num_nodes = 0, hidden = 0;
  is >> num_nodes >> hidden;
  if (is.fail()) return Status::InvalidArgument("truncated header");
  if (!(lat >= -90.0 && lat <= 90.0) || !(lon >= -360.0 && lon <= 360.0)) {
    return Status::InvalidArgument("projection origin out of range");
  }
  // Reject absurd dimensions before they size an allocation (a corrupt
  // header must not OOM the loader).
  constexpr size_t kMaxDim = size_t{1} << 26;
  if (num_nodes == 0 || hidden == 0 || num_nodes > kMaxDim || hidden > kMaxDim) {
    return Status::InvalidArgument("implausible graph dimensions");
  }

  auto model = std::make_unique<EdgeModel>(config);
  model->fitted_ = true;
  model->projection_ = std::make_unique<geo::LocalProjection>(geo::LatLon{lat, lon});

  std::vector<std::vector<std::string>> singleton_sets;
  singleton_sets.reserve(num_nodes);
  for (size_t n = 0; n < num_nodes; ++n) {
    std::string name;
    is >> name;
    if (is.fail() || name.empty()) {
      return Status::InvalidArgument("truncated node-name table");
    }
    singleton_sets.push_back({std::move(name)});
  }
  model->graph_ = graph::EntityGraph::Build(singleton_sets);
  if (model->graph_.num_nodes() != num_nodes) {
    return Status::InvalidArgument("duplicate node names in stream");
  }

  auto read_matrix = [&is](nn::Matrix* m, size_t want_rows, size_t want_cols,
                           const char* what) -> Status {
    size_t rows = 0, cols = 0;
    is >> rows >> cols;
    if (is.fail()) return Status::InvalidArgument(std::string("truncated ") + what);
    if (rows != want_rows || cols != want_cols) {
      return Status::InvalidArgument(std::string(what) + " dimension mismatch");
    }
    *m = nn::Matrix(rows, cols);
    for (size_t r = 0; r < rows; ++r) {
      for (size_t c = 0; c < cols; ++c) {
        double v = 0.0;
        is >> v;
        if (is.fail()) {
          return Status::InvalidArgument(std::string("truncated ") + what);
        }
        if (!std::isfinite(v)) {
          return Status::InvalidArgument(std::string("non-finite value in ") + what);
        }
        m->At(r, c) = v;
      }
    }
    return Status::Ok();
  };
  size_t theta_dim = 6 * config.num_components;
  Status status = read_matrix(&model->smoothed_embeddings_, num_nodes, hidden,
                              "smoothed embeddings");
  if (status.ok()) status = read_matrix(&model->attention_q_, hidden, 1, "attention q");
  if (!status.ok()) return status;
  is >> model->attention_b_;
  if (is.fail()) return Status::InvalidArgument("truncated attention bias");
  status = read_matrix(&model->head_w_, hidden, theta_dim, "head weights");
  if (status.ok()) status = read_matrix(&model->head_b_, 1, theta_dim, "head bias");
  if (!status.ok()) return status;
  is >> model->fallback_mean_.x >> model->fallback_mean_.y >> model->fallback_sigma_km_;
  is >> model->coord_scale_km_;
  if (is.fail()) return Status::InvalidArgument("truncated body");
  if (!std::isfinite(model->attention_b_) || !std::isfinite(model->fallback_mean_.x) ||
      !std::isfinite(model->fallback_mean_.y)) {
    return Status::InvalidArgument("non-finite scalar parameters");
  }
  if (!(model->fallback_sigma_km_ > 0.0) ||
      !std::isfinite(model->fallback_sigma_km_)) {
    return Status::InvalidArgument("non-positive fallback sigma");
  }
  if (!(model->coord_scale_km_ > 0.0) || !std::isfinite(model->coord_scale_km_)) {
    return Status::InvalidArgument("non-positive coordinate scale");
  }
  return model;
}

Result<std::unique_ptr<EdgeModel>> EdgeModel::LoadFromStore(
    std::shared_ptr<const MmapModelStore> store) {
  EDGE_CHECK(store != nullptr);
  // The store already ran the untrusted-input gates (MmapModelStore::Validate
  // enforces the LoadInference contract), so everything here is O(1) in
  // entity count: copy the config and the O(hidden) matrices, keep the
  // mapping for the O(entities) state. No graph rebuild, no embedding parse.
  EdgeConfig config;
  config.display_name = store->display_name();
  config.num_components = store->num_components();
  config.sigma_min_km = store->sigma_min_km();
  config.rho_max = store->rho_max();
  config.use_attention = store->use_attention();
  Status config_status = config.Validate();
  if (!config_status.ok()) {
    return Status::InvalidArgument("corrupt store config: " +
                                   config_status.ToString());
  }
  auto model = std::make_unique<EdgeModel>(config);
  model->fitted_ = true;
  model->projection_ = std::make_unique<geo::LocalProjection>(
      geo::LatLon{store->origin_lat(), store->origin_lon()});
  model->attention_q_ = store->attention_q();
  model->attention_b_ = store->attention_b();
  model->head_w_ = store->head_w();
  model->head_b_ = store->head_b();
  model->fallback_mean_ = {store->fallback_x(), store->fallback_y()};
  model->fallback_sigma_km_ = store->fallback_sigma_km();
  model->coord_scale_km_ = store->coord_scale_km();
  model->store_ = std::move(store);
  return model;
}

}  // namespace edge::core
