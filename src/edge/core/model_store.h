#ifndef EDGE_CORE_MODEL_STORE_H_
#define EDGE_CORE_MODEL_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "edge/common/status.h"
#include "edge/nn/matrix.h"

/// \file
/// `edge-model.v1` — the zero-copy binary inference-checkpoint format and the
/// mmap-backed store that serves it (DESIGN.md §15).
///
/// The text EDGE-INFERENCE checkpoint stays the canonical, portable
/// interchange format, but loading it re-parses every float through
/// from_chars: load latency and peak RSS scale linearly with entity count,
/// which is exactly the bound on "millions of entities per city world" and
/// the cost a serving replica pays on every hot reload. This format instead
/// lays the model out so a loader can `mmap` the file read-only and serve
/// embedding rows straight out of the page cache through nn::ConstRowSpan —
/// hot reload becomes a map-and-swap whose cost is independent of entity
/// count (StoreVerify::kFast), and cold load never materializes a second
/// copy of the embedding matrix.
///
/// On-disk layout (all integers little-endian, fixed width):
///
///   [header: 128 bytes]
///     0   char[8]  magic "EDGEMDL1"
///     8   u32      format version (1)
///     12  u32      endianness probe 0x01020304
///     16  u64      total file size in bytes
///     24  u64      manifest offset
///     32  u32      section count
///     36  u32      embedding precision (EmbedPrecision)
///     40  u64      num_nodes (entity vocabulary size)
///     48  u64      hidden (embedding dimension)
///     56  char[16] build id, 16 hex digits (informational: the values are
///                  raw IEEE-754 bytes and load anywhere; the id localizes
///                  "which build wrote this" in debugging)
///     72  48 bytes reserved, must be zero
///     120 u64      header checksum: FNV-1a over bytes [0, 120)
///   [sections, each 64-byte aligned, zero-padded gaps]
///   [manifest: section_count x {u32 id, u32 zero, u64 offset, u64 size,
///    u64 fnv1a} followed by u64 FNV-1a over the entry bytes]
///
/// The manifest is written last and must end exactly at file_size, so a torn
/// write is caught by the size/offset gates before any checksum runs. Every
/// byte of the file is either covered by a checksum (header, sections,
/// manifest) or verified to be zero (reserved bytes, alignment gaps) under
/// StoreVerify::kFull — a single flipped bit anywhere is rejected.
///
/// Sections:
///   kConfig     line-oriented text: display name, mixture shape, projection
///               origin, fallback prior, coordinate scale, attention bias —
///               parsed under the same untrusted-input gates as
///               EdgeModel::LoadInference.
///   kVocab      u64 count, u64 blob_bytes, u64 offsets[count+1], name blob.
///               Names are stored in node-id order, so ids agree bitwise
///               with the text checkpoint's EntityGraph ids (the serve-layer
///               cache keys on them).
///   kVocabIndex u64 ids[count], node ids sorted by name bytes — NodeId() is
///               a binary search over the mapped blob with zero load-time
///               index construction.
///   kEmbeddings raw row-major values at the header's precision: fp64/fp32
///               IEEE, fp16 (IEEE binary16), or int8 symmetric per-row.
///   kScales     double per-row dequantization scale (int8 only).
///   kAttentionQ, kHeadW, kHeadB
///               small fp64 matrices: u64 rows, u64 cols, doubles.

namespace edge::core {

class EdgeModel;

/// Storage precision of the embedding section. fp64 is exact (store-backed
/// predictions are bitwise identical to the text checkpoint) and zero-copy;
/// the narrower precisions trade accuracy for bytes and dequantize into a
/// caller scratch buffer on gather. BENCH_model_store.json records the
/// measured accuracy-vs-size trade on the bench worlds.
enum class EmbedPrecision : uint32_t {
  kFp64 = 0,
  kFp32 = 1,
  kFp16 = 2,  ///< IEEE binary16, round-to-nearest-even.
  kInt8 = 3,  ///< Symmetric per-row scale: value = scale * q, q in [-127,127].
};

/// "fp64" / "fp32" / "fp16" / "int8".
const char* EmbedPrecisionName(EmbedPrecision precision);
/// Parses the names above; false on anything else.
bool ParseEmbedPrecision(std::string_view name, EmbedPrecision* out);

/// How much of an opened file to verify before serving from it.
enum class StoreVerify {
  /// Structural gates plus every checksum and a finite scan of the small
  /// sections — O(file) at memcpy speed. The default; what `convert` and CI
  /// use.
  kFull,
  /// Structural gates only (header, manifest, bounds, alignment, shapes,
  /// small-matrix finiteness): O(sections) work, independent of entity
  /// count — the hot-reload map-and-swap path. Embedding/vocab payload bytes
  /// are bounds-checked per access instead of scanned, so corruption can
  /// surface as wrong values but never as out-of-bounds reads. Reserve for
  /// artifacts that were written by `convert` and verified kFull once.
  kFast,
};

/// First bytes of every edge-model.v1 file.
inline constexpr char kModelStoreMagic[8] = {'E', 'D', 'G', 'E',
                                             'M', 'D', 'L', '1'};

/// True when `path` starts with the edge-model.v1 magic (the format sniff
/// tools and the serve reload path use to route text vs binary checkpoints).
bool LooksLikeModelStore(const std::string& path);

/// A read-only, validated view of one edge-model.v1 file. The file is mapped
/// with mmap(PROT_READ) where available (falling back to an owned buffer),
/// and all accessors serve pointers into that mapping; the store must
/// outlive every span it hands out, which EdgeModel::LoadFromStore
/// guarantees by holding the shared_ptr. Immutable after Open, so any number
/// of threads may read concurrently.
class MmapModelStore {
 public:
  static constexpr size_t kNotFound = static_cast<size_t>(-1);

  /// Maps and validates `path` (gates per `verify`; see StoreVerify). Every
  /// malformation — truncation, bit flip, wrong magic/version, implausible
  /// dimensions, checksum mismatch — is a Status, never an abort, and is
  /// raised before any allocation is sized by untrusted input. Probes fault
  /// point "io.checkpoint.read".
  static Result<std::shared_ptr<const MmapModelStore>> Open(
      const std::string& path, StoreVerify verify = StoreVerify::kFull);

  /// As Open, over an in-memory copy of the bytes (no mapping). This is the
  /// snapshot-section validation path and the portable fallback.
  static Result<std::shared_ptr<const MmapModelStore>> FromBytes(
      std::string bytes, StoreVerify verify = StoreVerify::kFull);

  ~MmapModelStore();
  MmapModelStore(const MmapModelStore&) = delete;
  MmapModelStore& operator=(const MmapModelStore&) = delete;

  size_t num_nodes() const { return num_nodes_; }
  size_t hidden() const { return hidden_; }
  EmbedPrecision precision() const { return precision_; }
  /// True when EmbeddingRow returns pointers into the mapping itself.
  bool zero_copy() const { return precision_ == EmbedPrecision::kFp64; }
  size_t file_size() const { return size_; }
  /// The 16-hex build id recorded at write time.
  std::string build_id() const;
  /// Whole-file bounds, for tests asserting a span aliases the mapping.
  const char* raw_data() const { return data_; }

  /// Row `node` of the embedding matrix. fp64 stores return a span aliasing
  /// the mapping (zero-copy; no write to *scratch). Quantized stores
  /// dequantize into *scratch — resized to hidden() — and return a span over
  /// it, so the span is invalidated by the next call with the same scratch.
  /// Non-finite dequantized values (corrupt fp16/fp32 bits under kFast)
  /// clamp to 0.0 rather than poisoning downstream mixture math.
  nn::ConstRowSpan EmbeddingRow(size_t node, std::vector<double>* scratch) const;

  /// Decodes row `node` into out[0..hidden()) at fp64, for gather loops that
  /// pack several rows into one buffer (EdgeModel's attention path). Same
  /// non-finite clamping as EmbeddingRow. `node` must be < num_nodes().
  void DequantizeRow(size_t node, double* out) const;

  /// Node id of `name`, or kNotFound. Binary search over the mapped sorted
  /// index: O(log V) per lookup, zero setup at load time. Total over
  /// arbitrary index bytes (kFast): corrupt entries degrade to kNotFound.
  size_t NodeId(std::string_view name) const;

  /// Name of node `id` ("" for out-of-range ids or corrupt offsets).
  std::string_view NodeName(size_t id) const;

  /// Parsed small sections (copied out at Open; fp64 exact).
  const nn::Matrix& attention_q() const { return attention_q_; }
  const nn::Matrix& head_w() const { return head_w_; }
  const nn::Matrix& head_b() const { return head_b_; }
  const std::string& display_name() const { return display_name_; }
  size_t num_components() const { return num_components_; }
  double sigma_min_km() const { return sigma_min_km_; }
  double rho_max() const { return rho_max_; }
  bool use_attention() const { return use_attention_; }
  double origin_lat() const { return origin_lat_; }
  double origin_lon() const { return origin_lon_; }
  double attention_b() const { return attention_b_; }
  double fallback_x() const { return fallback_x_; }
  double fallback_y() const { return fallback_y_; }
  double fallback_sigma_km() const { return fallback_sigma_km_; }
  double coord_scale_km() const { return coord_scale_km_; }

 private:
  MmapModelStore() = default;
  static Result<std::shared_ptr<const MmapModelStore>> Validate(
      std::shared_ptr<MmapModelStore> store, StoreVerify verify);

  /// Either a live mmap region (mapped_ != nullptr) or owned bytes.
  const char* data_ = nullptr;
  size_t size_ = 0;
  void* mapped_ = nullptr;
  std::string owned_;

  /// Section payload views into data_.
  const char* vocab_offsets_ = nullptr;  ///< u64[num_nodes_ + 1].
  const char* vocab_blob_ = nullptr;
  size_t vocab_blob_bytes_ = 0;
  const char* vocab_index_ = nullptr;  ///< u64[num_nodes_].
  const char* embeddings_ = nullptr;
  const char* scales_ = nullptr;  ///< double[num_nodes_] (int8 only).

  size_t num_nodes_ = 0;
  size_t hidden_ = 0;
  EmbedPrecision precision_ = EmbedPrecision::kFp64;
  char build_id_[16] = {};

  nn::Matrix attention_q_;
  nn::Matrix head_w_;
  nn::Matrix head_b_;
  std::string display_name_;
  size_t num_components_ = 0;
  double sigma_min_km_ = 0.0;
  double rho_max_ = 0.0;
  bool use_attention_ = true;
  double origin_lat_ = 0.0;
  double origin_lon_ = 0.0;
  double attention_b_ = 0.0;
  double fallback_x_ = 0.0;
  double fallback_y_ = 0.0;
  double fallback_sigma_km_ = 1.0;
  double coord_scale_km_ = 1.0;
};

/// Serializes a fitted (or loaded) model's inference state into edge-model.v1
/// bytes at the given embedding precision. fp64 output round-trips the text
/// checkpoint bitwise (text -> binary -> text is byte-identical).
Status SerializeModelStore(const EdgeModel& model, EmbedPrecision precision,
                           std::string* out);

/// SerializeModelStore + WriteFileAtomic (tmp + fsync + rename).
Status SaveModelStoreAtomic(const EdgeModel& model, EmbedPrecision precision,
                            const std::string& path);

/// Loads an inference model from `path`, sniffing the format: edge-model.v1
/// files take the mmap path (verified per `verify`), anything else is parsed
/// as a text EDGE-INFERENCE checkpoint. The one loader tools and the serve
/// reload path share.
Result<std::unique_ptr<EdgeModel>> LoadInferenceAuto(
    const std::string& path, StoreVerify verify = StoreVerify::kFull);

/// IEEE binary16 conversions (software; round-to-nearest-even on narrowing).
/// Exposed for the quantization tests.
uint16_t Fp16FromDouble(double v);
double Fp16ToDouble(uint16_t h);

}  // namespace edge::core

#endif  // EDGE_CORE_MODEL_STORE_H_
