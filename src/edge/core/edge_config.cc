#include "edge/core/edge_config.h"

namespace edge::core {

Status EdgeConfig::Validate() const {
  if (embedding_dim == 0) return Status::InvalidArgument("embedding_dim must be > 0");
  if (num_components == 0) return Status::InvalidArgument("num_components must be > 0");
  if (epochs <= 0) return Status::InvalidArgument("epochs must be > 0");
  if (batch_size == 0) return Status::InvalidArgument("batch_size must be > 0");
  if (sigma_min_km <= 0.0) return Status::InvalidArgument("sigma_min_km must be > 0");
  if (rho_max <= 0.0 || rho_max >= 1.0) {
    return Status::InvalidArgument("rho_max must be in (0, 1)");
  }
  for (size_t width : gcn_hidden) {
    if (width == 0) return Status::InvalidArgument("gcn layer width must be > 0");
  }
  if (adam.learning_rate <= 0.0) {
    return Status::InvalidArgument("learning rate must be > 0");
  }
  if (num_threads < 0) {
    return Status::InvalidArgument("num_threads must be >= 0 (0 = hardware)");
  }
  if (entity2vec.num_threads < 0) {
    return Status::InvalidArgument("entity2vec.num_threads must be >= 0");
  }
  if (recovery.checkpoint_every <= 0) {
    return Status::InvalidArgument("recovery.checkpoint_every must be > 0");
  }
  if (recovery.max_epochs_per_run < 0) {
    return Status::InvalidArgument("recovery.max_epochs_per_run must be >= 0");
  }
  if (recovery.max_rollbacks < 0) {
    return Status::InvalidArgument("recovery.max_rollbacks must be >= 0");
  }
  if (recovery.grad_spike_factor < 0.0) {
    return Status::InvalidArgument("recovery.grad_spike_factor must be >= 0");
  }
  return Status::Ok();
}

EdgeConfig EdgeConfig::NoGcn() {
  EdgeConfig config;
  config.display_name = "NoGCN";
  config.gcn_hidden.clear();
  return config;
}

EdgeConfig EdgeConfig::SumAggregation() {
  EdgeConfig config;
  config.display_name = "SUM";
  config.use_attention = false;
  return config;
}

EdgeConfig EdgeConfig::NoMixture() {
  EdgeConfig config;
  config.display_name = "NoMixture";
  config.num_components = 1;
  return config;
}

}  // namespace edge::core
