#ifndef EDGE_OBS_TRACE_CONTEXT_H_
#define EDGE_OBS_TRACE_CONTEXT_H_

#include <cstdint>

/// \file
/// Per-request trace context: a deterministic request id plus begin/end
/// microsecond stamps for each lifecycle stage of a served request
/// (submit -> NER -> cache probe -> admission queue -> micro-batch ->
/// predict -> respond). The context travels with the request through the
/// admission queue; at response time the stamps become (a) the per-stage
/// latency waterfall attached to the response JSON under "telemetry" and
/// (b) parented Chrome async spans on the request-id track when tracing
/// is enabled.

namespace edge::obs {

/// Stages of one served request, in waterfall order. kQueue..kPredict are
/// absent for cache hits and degraded (shed / expired-deadline) responses.
enum class RequestStage : int {
  kNer = 0,     ///< Submit-side entity extraction.
  kCacheProbe,  ///< LRU lookup on the sorted entity-id key.
  kQueue,       ///< Admission-queue wait (enqueue -> worker pickup).
  kBatch,       ///< Worker pickup -> response set (whole micro-batch drain).
  kPredict,     ///< PredictBatch model inference (shared across the batch).
  kStageCount
};

/// Stable lowercase stage label ("ner", "cache", "queue", ...), used both in
/// response-JSON telemetry keys ("<name>_ms") and trace span names.
const char* RequestStageName(RequestStage stage);

/// Not thread-safe by itself: at most one thread touches a context at a time
/// (submit thread until enqueue, then exactly one worker under the service
/// mutex). Stamps use the shared trace timeline (TraceNowMicros), so spans
/// from different requests and EDGE_TRACE_SPAN scopes line up in the viewer.
class TraceContext {
 public:
  TraceContext() = default;
  explicit TraceContext(uint64_t request_id) : request_id_(request_id) {}

  /// 0 means "no telemetry" (a default-constructed context).
  uint64_t request_id() const { return request_id_; }

  void Begin(RequestStage stage);
  void End(RequestStage stage);
  /// Stamps both ends at once — for a batch-wide stage measured once and
  /// copied into each member request's context.
  void SetStage(RequestStage stage, uint64_t begin_us, uint64_t end_us);

  bool HasStage(RequestStage stage) const;
  /// Stage duration in milliseconds; 0 when the stage was never recorded.
  double StageMs(RequestStage stage) const;

  /// Emits one async Chrome span per recorded stage plus an umbrella
  /// "edge.request" span, all on the request-id track. No-op when tracing
  /// is off.
  void ExportSpans() const;

 private:
  static constexpr int kStageCount = static_cast<int>(RequestStage::kStageCount);

  uint64_t request_id_ = 0;
  uint64_t begin_us_[kStageCount] = {};
  uint64_t end_us_[kStageCount] = {};
  // Bitmask of stages whose End/SetStage ran — a timestamp of 0 is a valid
  // instant at the trace origin, so presence cannot be inferred from stamps.
  uint32_t recorded_ = 0;
};

}  // namespace edge::obs

#endif  // EDGE_OBS_TRACE_CONTEXT_H_
