#ifndef EDGE_OBS_TRACE_H_
#define EDGE_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

/// \file
/// Scoped trace spans exported as Chrome trace-event JSON — load the file at
/// chrome://tracing or https://ui.perfetto.dev to see the training/inference
/// timeline per thread.
///
///   void Fit(...) {
///     EDGE_TRACE_SPAN("edge.core.fit");
///     ...
///   }
///
/// Tracing is off by default: a span then costs one relaxed atomic load and
/// records nothing. It turns on when the EDGE_TRACE_OUT environment variable
/// names an output path (the file is written automatically at process exit)
/// or programmatically via StartTracing() + WriteTrace(path). Spans nest
/// naturally; each records begin/end timestamps, the dense thread id and its
/// nesting depth on that thread.

namespace edge::obs {

/// One completed span. Timestamps are microseconds since an arbitrary
/// process-wide steady origin (what the Chrome "ts" field expects).
struct TraceEvent {
  /// Rendering shape: kComplete => one "X" event; kAsync => a parented
  /// "b"/"e" pair on the `flow_id` track (cross-thread request waterfalls);
  /// kInstant => a zero-duration "i" marker (rollback, checkpoint, reload).
  enum class Kind : uint8_t { kComplete, kAsync, kInstant };

  const char* name;  ///< Static-storage span label.
  uint64_t start_us;
  uint64_t duration_us;
  int thread_id;  ///< DenseThreadId() of the emitting thread.
  int depth;      ///< 0 = outermost span on its thread.
  Kind kind = Kind::kComplete;
  uint64_t flow_id = 0;  ///< Async track id (the request id); 0 otherwise.
};

/// Microseconds on the shared process-wide trace timeline. Request ids and
/// stage waterfalls stamp with this so their spans parent correctly.
uint64_t TraceNowMicros();

/// Records one async span on track `flow_id` (rendered as a parented
/// "b"/"e" Chrome pair, cat "edge.request"). No-op when tracing is off.
/// Stage spans of one request share its id and nest in the viewer.
void RecordAsyncSpan(const char* name, uint64_t flow_id, uint64_t start_us,
                     uint64_t end_us);

/// Records an instant event ("i" phase) at now. No-op when tracing is off.
void RecordInstant(const char* name);

/// True when spans are being recorded (cheap; callable from hot paths). The
/// first call resolves EDGE_TRACE_OUT and, when set, enables tracing and
/// registers the at-exit export.
bool TracingEnabled();

/// Enables span recording regardless of the environment.
void StartTracing();

/// Stops recording (already-recorded events are kept until ClearTrace()).
void StopTracing();

/// Snapshot of everything recorded so far, in completion order (a nested
/// span therefore precedes its parent).
std::vector<TraceEvent> TraceSnapshot();

/// Drops all recorded events (test isolation).
void ClearTrace();

/// Renders recorded events as a Chrome trace-event JSON document
/// ({"traceEvents": [...], "displayTimeUnit": "ms"}).
std::string TraceToJson();

/// Writes TraceToJson() to `path`; returns false when the file cannot be
/// opened.
bool WriteTrace(const std::string& path);

/// RAII span; prefer the EDGE_TRACE_SPAN macro. `name` must have static
/// storage duration (string literals) — spans store the pointer, not a copy.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  uint64_t start_us_;
  int depth_;
  bool active_;
};

}  // namespace edge::obs

#define EDGE_OBS_CONCAT_INNER(a, b) a##b
#define EDGE_OBS_CONCAT(a, b) EDGE_OBS_CONCAT_INNER(a, b)

/// Opens a span covering the rest of the enclosing scope.
#define EDGE_TRACE_SPAN(name) \
  ::edge::obs::TraceSpan EDGE_OBS_CONCAT(edge_trace_span_, __COUNTER__)(name)

#endif  // EDGE_OBS_TRACE_H_
