#ifndef EDGE_OBS_JSON_UTIL_H_
#define EDGE_OBS_JSON_UTIL_H_

#include <cmath>
#include <cstdio>
#include <string>

/// \file
/// Tiny append-style JSON writers shared by the metrics snapshot and the
/// Chrome-trace exporter. Strings are escaped per RFC 8259; non-finite
/// doubles are clamped to +/-1e308 (JSON has no inf/nan) so every document
/// we emit parses.

namespace edge::obs::internal {

inline void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

inline void AppendJsonDouble(std::string* out, double v) {
  if (std::isnan(v)) v = 0.0;
  if (std::isinf(v)) v = v > 0 ? 1e308 : -1e308;
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  *out += buf;
}

}  // namespace edge::obs::internal

#endif  // EDGE_OBS_JSON_UTIL_H_
