#include "edge/obs/exporter.h"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "edge/obs/log.h"
#include "edge/obs/metrics.h"

namespace edge::obs {

namespace {

/// Write-to-tmp + rename. Deliberately self-contained (obs is a leaf library
/// and cannot use edge/common's WriteFileAtomic) and fsync-free: the export
/// is telemetry, not a checkpoint — on a crash the previous snapshot
/// surviving is exactly the right behavior.
bool WriteFileAtomicBasic(const std::string& path, const std::string& body) {
  std::string tmp = path + ".tmp";
  std::FILE* out = std::fopen(tmp.c_str(), "w");
  if (out == nullptr) return false;
  bool ok = std::fwrite(body.data(), 1, body.size(), out) == body.size();
  ok = std::fclose(out) == 0 && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace

MetricsExporter::MetricsExporter(Options options)
    : options_(std::move(options)) {
  options_.period_seconds = std::max(options_.period_seconds, 0.01);
  if (!options_.payload) {
    options_.payload = [] { return Registry::Global().ToJson(); };
  }
  ExportNow();
  thread_ = std::thread(&MetricsExporter::Run, this);
}

MetricsExporter::~MetricsExporter() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  // Final export so the file reflects the full process lifetime (e.g. the
  // last requests served before shutdown).
  ExportNow();
}

bool MetricsExporter::ExportNow() {
  Registry& registry = Registry::Global();
  bool ok = WriteFileAtomicBasic(options_.path, options_.payload());
  if (ok) {
    registry.GetCounter("edge.obs.metrics_exports")->Increment();
  } else {
    registry.GetCounter("edge.obs.export_failures")->Increment();
    EDGE_LOG(WARN) << "metrics export failed" << Kv("path", options_.path);
  }
  return ok;
}

void MetricsExporter::Run() {
  std::unique_lock<std::mutex> lock(mu_);
  const auto period = std::chrono::duration<double>(options_.period_seconds);
  while (!stop_) {
    if (cv_.wait_for(lock, period, [this] { return stop_; })) break;
    lock.unlock();
    ExportNow();
    lock.lock();
  }
}

double MetricsExporter::PeriodFromEnv(double fallback) {
  const char* env = std::getenv("EDGE_METRICS_EXPORT_EVERY");
  if (env == nullptr || env[0] == '\0') return fallback;
  double seconds = 0.0;
  const char* end = env + std::strlen(env);
  auto [ptr, ec] = std::from_chars(env, end, seconds);
  if (ec != std::errc() || ptr != end || !(seconds > 0.0)) {
    EDGE_LOG(WARN) << "ignoring invalid EDGE_METRICS_EXPORT_EVERY"
                   << Kv("value", env);
    return fallback;
  }
  return seconds;
}

}  // namespace edge::obs
