#include "edge/obs/trace.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "edge/obs/json_util.h"
#include "edge/obs/log.h"

namespace edge::obs {

namespace {

std::atomic<bool> g_enabled{false};
std::atomic<bool> g_env_resolved{false};

std::mutex g_trace_mu;
std::vector<TraceEvent> g_events;       // Guarded by g_trace_mu.
std::string g_exit_path;                // Guarded by g_trace_mu.

/// Span nesting level of the current thread (depth 0 = outermost).
thread_local int t_span_depth = 0;

uint64_t NowMicros() {
  // One steady origin for the whole process so spans from different threads
  // share a timeline.
  static const std::chrono::steady_clock::time_point kOrigin =
      std::chrono::steady_clock::now();
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                   std::chrono::steady_clock::now() - kOrigin)
                                   .count());
}

void ExportAtExit() {
  std::string path;
  {
    std::lock_guard<std::mutex> lock(g_trace_mu);
    path = g_exit_path;
  }
  if (!path.empty()) WriteTrace(path);
}

/// Resolves EDGE_TRACE_OUT once; when set, tracing turns on and the trace is
/// exported to that path when the process exits normally.
void ResolveEnvOnce() {
  if (g_env_resolved.exchange(true, std::memory_order_acq_rel)) return;
  const char* env = std::getenv("EDGE_TRACE_OUT");
  if (env == nullptr || env[0] == '\0') return;
  {
    std::lock_guard<std::mutex> lock(g_trace_mu);
    g_exit_path = env;
  }
  std::atexit(&ExportAtExit);
  g_enabled.store(true, std::memory_order_release);
}

}  // namespace

bool TracingEnabled() {
  if (!g_env_resolved.load(std::memory_order_acquire)) ResolveEnvOnce();
  return g_enabled.load(std::memory_order_relaxed);
}

uint64_t TraceNowMicros() { return NowMicros(); }

void RecordAsyncSpan(const char* name, uint64_t flow_id, uint64_t start_us,
                     uint64_t end_us) {
  if (!TracingEnabled()) return;
  TraceEvent event{name,
                   start_us,
                   end_us >= start_us ? end_us - start_us : 0,
                   DenseThreadId(),
                   0,
                   TraceEvent::Kind::kAsync,
                   flow_id};
  std::lock_guard<std::mutex> lock(g_trace_mu);
  g_events.push_back(event);
}

void RecordInstant(const char* name) {
  if (!TracingEnabled()) return;
  TraceEvent event{name,          NowMicros(), 0, DenseThreadId(), 0,
                   TraceEvent::Kind::kInstant, 0};
  std::lock_guard<std::mutex> lock(g_trace_mu);
  g_events.push_back(event);
}

void StartTracing() {
  ResolveEnvOnce();
  g_enabled.store(true, std::memory_order_release);
}

void StopTracing() { g_enabled.store(false, std::memory_order_release); }

std::vector<TraceEvent> TraceSnapshot() {
  std::lock_guard<std::mutex> lock(g_trace_mu);
  return g_events;
}

void ClearTrace() {
  std::lock_guard<std::mutex> lock(g_trace_mu);
  g_events.clear();
}

std::string TraceToJson() {
  using internal::AppendJsonString;
  std::vector<TraceEvent> events = TraceSnapshot();
  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  auto begin_event = [&](const TraceEvent& e) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "  {\"name\": ";
    AppendJsonString(&out, e.name);
  };
  for (const TraceEvent& e : events) {
    switch (e.kind) {
      case TraceEvent::Kind::kComplete:
        begin_event(e);
        out += ", \"cat\": \"edge\", \"ph\": \"X\", \"pid\": 1";
        out += ", \"tid\": " + std::to_string(e.thread_id);
        out += ", \"ts\": " + std::to_string(e.start_us);
        out += ", \"dur\": " + std::to_string(e.duration_us);
        out += ", \"args\": {\"depth\": " + std::to_string(e.depth) + "}}";
        break;
      case TraceEvent::Kind::kAsync:
        // Async begin/end pairs sharing an id render as one parented track
        // per request even when the stages ran on different threads.
        begin_event(e);
        out += ", \"cat\": \"edge.request\", \"ph\": \"b\", \"pid\": 1";
        out += ", \"tid\": " + std::to_string(e.thread_id);
        out += ", \"id\": " + std::to_string(e.flow_id);
        out += ", \"ts\": " + std::to_string(e.start_us) + "}";
        begin_event(e);
        out += ", \"cat\": \"edge.request\", \"ph\": \"e\", \"pid\": 1";
        out += ", \"tid\": " + std::to_string(e.thread_id);
        out += ", \"id\": " + std::to_string(e.flow_id);
        out += ", \"ts\": " + std::to_string(e.start_us + e.duration_us) + "}";
        break;
      case TraceEvent::Kind::kInstant:
        begin_event(e);
        out += ", \"cat\": \"edge\", \"ph\": \"i\", \"s\": \"t\", \"pid\": 1";
        out += ", \"tid\": " + std::to_string(e.thread_id);
        out += ", \"ts\": " + std::to_string(e.start_us) + "}";
        break;
    }
  }
  out += "\n]}\n";
  return out;
}

bool WriteTrace(const std::string& path) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    EDGE_LOG(ERROR) << "cannot open trace output" << Kv("path", path);
    return false;
  }
  std::string json = TraceToJson();
  std::fwrite(json.data(), 1, json.size(), out);
  std::fclose(out);
  return true;
}

TraceSpan::TraceSpan(const char* name)
    : name_(name), start_us_(0), depth_(0), active_(TracingEnabled()) {
  if (!active_) return;
  depth_ = t_span_depth++;
  start_us_ = NowMicros();
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  uint64_t end_us = NowMicros();
  --t_span_depth;
  TraceEvent event{name_, start_us_, end_us - start_us_, DenseThreadId(), depth_};
  std::lock_guard<std::mutex> lock(g_trace_mu);
  g_events.push_back(event);
}

}  // namespace edge::obs
