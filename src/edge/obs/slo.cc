#include "edge/obs/slo.h"

#include <algorithm>
#include <utility>

#include "edge/common/check.h"
#include "edge/obs/json_util.h"

namespace edge::obs {

SloMonitor::SloMonitor(std::string gauge_prefix)
    : gauge_prefix_(std::move(gauge_prefix)) {}

void SloMonitor::AddLatencyObjective(std::string name,
                                     const WindowedHistogram* histogram,
                                     double percentile,
                                     double threshold_seconds) {
  EDGE_CHECK(histogram != nullptr);
  EDGE_CHECK_GT(threshold_seconds, 0.0) << "latency objective must be positive";
  Objective objective;
  objective.name = std::move(name);
  objective.histogram = histogram;
  objective.percentile = std::clamp(percentile, 0.0, 100.0);
  objective.objective = threshold_seconds;
  objectives_.push_back(std::move(objective));
}

void SloMonitor::AddAvailabilityObjective(std::string name,
                                          const WindowedCounter* bad,
                                          const WindowedCounter* total,
                                          double availability_target) {
  EDGE_CHECK(bad != nullptr);
  EDGE_CHECK(total != nullptr);
  EDGE_CHECK_GT(availability_target, 0.0);
  EDGE_CHECK_LT(availability_target, 1.0)
      << "availability target must leave a non-empty error budget";
  Objective objective;
  objective.name = std::move(name);
  objective.bad = bad;
  objective.total = total;
  objective.objective = 1.0 - availability_target;  // Error budget.
  objectives_.push_back(std::move(objective));
}

std::vector<SloMonitor::Evaluation> SloMonitor::Evaluate() const {
  std::vector<Evaluation> evaluations;
  evaluations.reserve(objectives_.size());
  for (const Objective& objective : objectives_) {
    Evaluation evaluation;
    evaluation.name = objective.name;
    evaluation.objective = objective.objective;
    if (objective.histogram != nullptr) {
      WindowedHistogram::Snapshot snapshot = objective.histogram->TakeSnapshot();
      if (snapshot.count > 0) {
        evaluation.value = objective.histogram->Percentile(objective.percentile);
        evaluation.burn_rate = evaluation.value / objective.objective;
      }
    } else {
      int64_t total = objective.total->ValueInWindow();
      int64_t bad = objective.bad->ValueInWindow();
      if (total > 0) {
        evaluation.value =
            static_cast<double>(bad) / static_cast<double>(total);
        evaluation.burn_rate = evaluation.value / objective.objective;
      }
    }
    evaluation.ok = evaluation.burn_rate <= 1.0;
    Registry& registry = Registry::Global();
    registry.GetGauge(gauge_prefix_ + "." + objective.name + ".burn_rate")
        ->Set(evaluation.burn_rate);
    registry.GetGauge(gauge_prefix_ + "." + objective.name + ".ok")
        ->Set(evaluation.ok ? 1.0 : 0.0);
    evaluations.push_back(std::move(evaluation));
  }
  return evaluations;
}

std::string SloMonitor::ToJson(const std::vector<Evaluation>& evaluations) {
  using internal::AppendJsonDouble;
  using internal::AppendJsonString;
  std::string out = "[";
  for (size_t i = 0; i < evaluations.size(); ++i) {
    const Evaluation& e = evaluations[i];
    out += i == 0 ? "" : ", ";
    out += "{\"name\": ";
    AppendJsonString(&out, e.name);
    out += ", \"value\": ";
    AppendJsonDouble(&out, e.value);
    out += ", \"objective\": ";
    AppendJsonDouble(&out, e.objective);
    out += ", \"burn_rate\": ";
    AppendJsonDouble(&out, e.burn_rate);
    out += ", \"ok\": ";
    out += e.ok ? "true" : "false";
    out += "}";
  }
  out += "]";
  return out;
}

}  // namespace edge::obs
