#ifndef EDGE_OBS_SLO_H_
#define EDGE_OBS_SLO_H_

#include <string>
#include <vector>

#include "edge/obs/metrics.h"

/// \file
/// SLO monitor: evaluates configured latency/availability objectives against
/// the sliding-window instruments and publishes burn-rate gauges. Burn rate
/// is "how fast the error budget is being spent": 1.0 means exactly on
/// objective, above 1.0 the budget is burning (page-worthy when sustained),
/// below 1.0 there is headroom. An empty window evaluates to burn 0 / ok —
/// no traffic spends no budget.

namespace edge::obs {

class SloMonitor {
 public:
  struct Evaluation {
    std::string name;
    /// Measured value: seconds for latency objectives, bad-event fraction
    /// for availability objectives.
    double value = 0.0;
    /// The objective: threshold seconds, or the error budget fraction
    /// (1 - availability target).
    double objective = 0.0;
    double burn_rate = 0.0;
    bool ok = true;
  };

  /// `gauge_prefix` namespaces the published gauges:
  /// <prefix>.<name>.burn_rate and <prefix>.<name>.ok (1.0 / 0.0).
  explicit SloMonitor(std::string gauge_prefix = "edge.slo");

  /// Latency objective: the `percentile` (0..100) of `histogram`'s live
  /// window must stay at or below `threshold_seconds`.
  /// Burn = measured / threshold. The histogram must outlive the monitor
  /// (registry instruments do).
  void AddLatencyObjective(std::string name, const WindowedHistogram* histogram,
                           double percentile, double threshold_seconds);

  /// Availability objective: bad/total over the live window must not exceed
  /// the error budget (1 - availability_target).
  /// Burn = bad_fraction / budget.
  void AddAvailabilityObjective(std::string name, const WindowedCounter* bad,
                                const WindowedCounter* total,
                                double availability_target);

  /// Evaluates every objective against the current windows and publishes the
  /// burn-rate/ok gauges in the global registry.
  std::vector<Evaluation> Evaluate() const;

  /// Renders evaluations as a JSON array (stable field order).
  static std::string ToJson(const std::vector<Evaluation>& evaluations);

 private:
  struct Objective {
    std::string name;
    const WindowedHistogram* histogram = nullptr;  // Latency objectives.
    double percentile = 99.0;
    const WindowedCounter* bad = nullptr;  // Availability objectives.
    const WindowedCounter* total = nullptr;
    double objective = 0.0;  // Threshold seconds or error budget fraction.
  };

  std::string gauge_prefix_;
  std::vector<Objective> objectives_;
};

}  // namespace edge::obs

#endif  // EDGE_OBS_SLO_H_
