#include "edge/obs/metrics.h"

#include <algorithm>
#include <limits>
#include <map>

#include "edge/common/check.h"
#include "edge/obs/json_util.h"

namespace edge::obs {

namespace {

/// Lock-free min/max update via CAS (relaxed: metrics tolerate benign races).
void AtomicMin(std::atomic<double>* slot, double v) {
  double cur = slot->load(std::memory_order_relaxed);
  while (v < cur &&
         !slot->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* slot, double v) {
  double cur = slot->load(std::memory_order_relaxed);
  while (v > cur &&
         !slot->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicAdd(std::atomic<double>* slot, double delta) {
  double cur = slot->load(std::memory_order_relaxed);
  while (!slot->compare_exchange_weak(cur, cur + delta,
                                      std::memory_order_relaxed)) {
  }
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(bounds_.size() + 1),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  EDGE_CHECK(!bounds_.empty()) << "histogram needs at least one bucket bound";
  for (size_t i = 1; i < bounds_.size(); ++i) {
    EDGE_CHECK_LT(bounds_[i - 1], bounds_[i]) << "bounds must be increasing";
  }
}

void Histogram::Observe(double v) {
  size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin();
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&sum_, v);
  AtomicMin(&min_, v);
  AtomicMax(&max_, v);
}

double Histogram::Percentile(double p) const {
  int64_t total = count();
  if (total <= 0) return 0.0;
  double rank = std::clamp(p, 0.0, 100.0) / 100.0 * static_cast<double>(total);
  int64_t cumulative = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    int64_t in_bucket = buckets_[i].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= rank) {
      if (i == buckets_.size() - 1) return max();  // Overflow bucket.
      double lo = i == 0 ? std::min(min(), bounds_[0]) : bounds_[i - 1];
      double hi = bounds_[i];
      double within = (rank - static_cast<double>(cumulative)) /
                      static_cast<double>(in_bucket);
      // Clamp to the observed range: interpolation alone would report a
      // bucket's upper bound even when no observation reached it.
      return std::clamp(lo + (hi - lo) * std::clamp(within, 0.0, 1.0), min(),
                        max());
    }
    cumulative += in_bucket;
  }
  return max();
}

std::vector<int64_t> Histogram::BucketCounts() const {
  std::vector<int64_t> counts(buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

void Histogram::ResetForTest() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
}

const std::vector<double>& DefaultLatencyBucketsSeconds() {
  static const std::vector<double> kBounds = {
      0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
      0.5,   1.0,    2.5,   5.0,  10.0,  30.0, 60.0, 120.0};
  return kBounds;
}

void Series::Append(double v) {
  std::lock_guard<std::mutex> lock(mu_);
  values_.push_back(v);
}

std::vector<double> Series::values() const {
  std::lock_guard<std::mutex> lock(mu_);
  return values_;
}

size_t Series::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return values_.size();
}

void Series::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  values_.clear();
}

Registry& Registry::Global() {
  // Intentionally leaked, like the shared ThreadPool: instrument pointers are
  // cached in function-local statics across the codebase and must outlive
  // every other static destructor.
  static Registry* registry = new Registry();
  return *registry;
}

Counter* Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Registry::GetHistogram(const std::string& name,
                                  const std::vector<double>& bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(
        bounds.empty() ? DefaultLatencyBucketsSeconds() : bounds);
  }
  return slot.get();
}

Series* Registry::GetSeries(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = series_[name];
  if (slot == nullptr) slot = std::make_unique<Series>();
  return slot.get();
}

std::string Registry::ToJson() const {
  using internal::AppendJsonDouble;
  using internal::AppendJsonString;
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\n  \"counters\": {";

  // Sorted copies so snapshots are diffable run over run.
  auto sorted = [](const auto& m) {
    std::map<std::string, typename std::decay_t<decltype(m)>::mapped_type::pointer>
        sorted_map;
    for (const auto& [name, instrument] : m) sorted_map[name] = instrument.get();
    return sorted_map;
  };

  bool first = true;
  for (const auto& [name, counter] : sorted(counters_)) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonString(&out, name);
    out += ": " + std::to_string(counter->value());
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : sorted(gauges_)) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonString(&out, name);
    out += ": ";
    AppendJsonDouble(&out, gauge->value());
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : sorted(histograms_)) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonString(&out, name);
    int64_t count = histogram->count();
    out += ": {\"count\": " + std::to_string(count);
    out += ", \"sum\": ";
    AppendJsonDouble(&out, count > 0 ? histogram->sum() : 0.0);
    out += ", \"min\": ";
    AppendJsonDouble(&out, count > 0 ? histogram->min() : 0.0);
    out += ", \"max\": ";
    AppendJsonDouble(&out, count > 0 ? histogram->max() : 0.0);
    for (double p : {50.0, 90.0, 99.0}) {
      out += ", \"p" + std::to_string(static_cast<int>(p)) + "\": ";
      AppendJsonDouble(&out, histogram->Percentile(p));
    }
    out += ", \"buckets\": [";
    const std::vector<double>& bounds = histogram->bounds();
    std::vector<int64_t> counts = histogram->BucketCounts();
    for (size_t i = 0; i < counts.size(); ++i) {
      if (i > 0) out += ", ";
      out += "{\"le\": ";
      if (i < bounds.size()) {
        AppendJsonDouble(&out, bounds[i]);
      } else {
        out += "\"inf\"";
      }
      out += ", \"count\": " + std::to_string(counts[i]) + "}";
    }
    out += "]}";
  }
  out += "\n  },\n  \"series\": {";
  first = true;
  for (const auto& [name, series] : sorted(series_)) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonString(&out, name);
    out += ": [";
    std::vector<double> values = series->values();
    for (size_t i = 0; i < values.size(); ++i) {
      if (i > 0) out += ", ";
      AppendJsonDouble(&out, values[i]);
    }
    out += "]";
  }
  out += "\n  }\n}\n";
  return out;
}

void Registry::ResetValuesForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->ResetForTest();
  for (auto& [name, gauge] : gauges_) gauge->ResetForTest();
  for (auto& [name, histogram] : histograms_) histogram->ResetForTest();
  for (auto& [name, series] : series_) series->ResetForTest();
}

}  // namespace edge::obs
