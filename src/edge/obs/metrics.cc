#include "edge/obs/metrics.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <map>

#include "edge/common/check.h"
#include "edge/obs/json_util.h"

namespace edge::obs {

namespace {

/// Interpolated percentile over fixed-bound bucket counts (`counts` has one
/// overflow entry past `bounds`). Shared by Histogram and WindowedHistogram;
/// exact at bucket edges, at most one bucket width off inside, clamped to the
/// observed [vmin, vmax] range.
double PercentileFromBuckets(const std::vector<double>& bounds,
                             const std::vector<int64_t>& counts, int64_t total,
                             double vmin, double vmax, double p) {
  if (total <= 0) return 0.0;
  double rank = std::clamp(p, 0.0, 100.0) / 100.0 * static_cast<double>(total);
  int64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    int64_t in_bucket = counts[i];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= rank) {
      if (i == counts.size() - 1) return vmax;  // Overflow bucket.
      double lo = i == 0 ? std::min(vmin, bounds[0]) : bounds[i - 1];
      double hi = bounds[i];
      double within = (rank - static_cast<double>(cumulative)) /
                      static_cast<double>(in_bucket);
      return std::clamp(lo + (hi - lo) * std::clamp(within, 0.0, 1.0), vmin,
                        vmax);
    }
    cumulative += in_bucket;
  }
  return vmax;
}

/// Lock-free min/max update via CAS (relaxed: metrics tolerate benign races).
void AtomicMin(std::atomic<double>* slot, double v) {
  double cur = slot->load(std::memory_order_relaxed);
  while (v < cur &&
         !slot->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* slot, double v) {
  double cur = slot->load(std::memory_order_relaxed);
  while (v > cur &&
         !slot->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicAdd(std::atomic<double>* slot, double delta) {
  double cur = slot->load(std::memory_order_relaxed);
  while (!slot->compare_exchange_weak(cur, cur + delta,
                                      std::memory_order_relaxed)) {
  }
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(bounds_.size() + 1),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  EDGE_CHECK(!bounds_.empty()) << "histogram needs at least one bucket bound";
  for (size_t i = 1; i < bounds_.size(); ++i) {
    EDGE_CHECK_LT(bounds_[i - 1], bounds_[i]) << "bounds must be increasing";
  }
}

void Histogram::Observe(double v) {
  size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin();
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&sum_, v);
  AtomicMin(&min_, v);
  AtomicMax(&max_, v);
}

double Histogram::Percentile(double p) const {
  int64_t total = count();
  if (total <= 0) return 0.0;
  return PercentileFromBuckets(bounds_, BucketCounts(), total, min(), max(), p);
}

std::vector<int64_t> Histogram::BucketCounts() const {
  std::vector<int64_t> counts(buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

void Histogram::ResetForTest() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
}

const std::vector<double>& DefaultLatencyBucketsSeconds() {
  static const std::vector<double> kBounds = {
      0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
      0.5,   1.0,    2.5,   5.0,  10.0,  30.0, 60.0, 120.0};
  return kBounds;
}

uint64_t SteadyNowMicros() {
  static const std::chrono::steady_clock::time_point origin =
      std::chrono::steady_clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - origin)
          .count());
}

WindowedHistogram::WindowedHistogram(Options options, WindowClock clock)
    : options_(std::move(options)),
      clock_(clock ? std::move(clock) : WindowClock(&SteadyNowMicros)) {
  if (options_.bounds.empty()) options_.bounds = DefaultLatencyBucketsSeconds();
  EDGE_CHECK_GT(options_.window_seconds, 0.0) << "window must be positive";
  EDGE_CHECK_GE(options_.num_subwindows, 1u) << "need at least one sub-window";
  for (size_t i = 1; i < options_.bounds.size(); ++i) {
    EDGE_CHECK_LT(options_.bounds[i - 1], options_.bounds[i])
        << "bounds must be increasing";
  }
  subwindow_micros_ = std::max<uint64_t>(
      1, static_cast<uint64_t>(options_.window_seconds * 1e6 /
                               static_cast<double>(options_.num_subwindows)));
  ring_.resize(options_.num_subwindows);
  for (SubWindow& slot : ring_) {
    slot.buckets.assign(options_.bounds.size() + 1, 0);
  }
}

uint64_t WindowedHistogram::ClampedNowLocked() const {
  uint64_t now = clock_();
  // A clock stepped backwards (test fakes, suspend/resume quirks) must not
  // unwind history: freeze time at the furthest point seen instead.
  if (now < last_now_micros_) return last_now_micros_;
  last_now_micros_ = now;
  return now;
}

void WindowedHistogram::Observe(double v) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t index = ClampedNowLocked() / subwindow_micros_;
  SubWindow& slot = ring_[index % ring_.size()];
  if (slot.slot_index != index || slot.count == 0) {
    // The ring wrapped onto an expired slot (or a fresh one): recycle it.
    std::fill(slot.buckets.begin(), slot.buckets.end(), 0);
    slot.slot_index = index;
    slot.count = 0;
    slot.sum = 0.0;
  }
  size_t bucket = std::lower_bound(options_.bounds.begin(),
                                   options_.bounds.end(), v) -
                  options_.bounds.begin();
  slot.buckets[bucket] += 1;
  if (slot.count == 0 || v < slot.min) slot.min = v;
  if (slot.count == 0 || v > slot.max) slot.max = v;
  slot.count += 1;
  slot.sum += v;
}

WindowedHistogram::Snapshot WindowedHistogram::TakeSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t index = ClampedNowLocked() / subwindow_micros_;
  uint64_t live_min =
      index >= ring_.size() - 1 ? index - (ring_.size() - 1) : 0;
  Snapshot snapshot;
  snapshot.window_seconds = options_.window_seconds;
  std::vector<int64_t> buckets(options_.bounds.size() + 1, 0);
  bool any = false;
  for (const SubWindow& slot : ring_) {
    if (slot.count == 0 || slot.slot_index < live_min ||
        slot.slot_index > index) {
      continue;
    }
    snapshot.count += slot.count;
    snapshot.sum += slot.sum;
    if (!any || slot.min < snapshot.min) snapshot.min = slot.min;
    if (!any || slot.max > snapshot.max) snapshot.max = slot.max;
    any = true;
    for (size_t i = 0; i < buckets.size(); ++i) buckets[i] += slot.buckets[i];
  }
  if (any) {
    snapshot.p50 = PercentileFromBuckets(options_.bounds, buckets,
                                         snapshot.count, snapshot.min,
                                         snapshot.max, 50.0);
    snapshot.p90 = PercentileFromBuckets(options_.bounds, buckets,
                                         snapshot.count, snapshot.min,
                                         snapshot.max, 90.0);
    snapshot.p99 = PercentileFromBuckets(options_.bounds, buckets,
                                         snapshot.count, snapshot.min,
                                         snapshot.max, 99.0);
    snapshot.p999 = PercentileFromBuckets(options_.bounds, buckets,
                                          snapshot.count, snapshot.min,
                                          snapshot.max, 99.9);
    snapshot.rate_per_second =
        static_cast<double>(snapshot.count) / options_.window_seconds;
  }
  return snapshot;
}

double WindowedHistogram::Percentile(double p) const {
  Snapshot snapshot = TakeSnapshot();
  if (snapshot.count <= 0) return 0.0;
  if (p <= 50.0) return snapshot.p50;  // Snapshot carries the common points;
  if (p <= 90.0) return snapshot.p90;  // arbitrary p maps to the nearest.
  if (p <= 99.0) return snapshot.p99;
  return snapshot.p999;
}

int64_t WindowedHistogram::CountInWindow() const { return TakeSnapshot().count; }

double WindowedHistogram::RatePerSecond() const {
  return TakeSnapshot().rate_per_second;
}

void WindowedHistogram::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (SubWindow& slot : ring_) {
    std::fill(slot.buckets.begin(), slot.buckets.end(), 0);
    slot.slot_index = 0;
    slot.count = 0;
    slot.sum = 0.0;
    slot.min = 0.0;
    slot.max = 0.0;
  }
  last_now_micros_ = 0;
}

WindowedCounter::WindowedCounter(Options options, WindowClock clock)
    : options_(options),
      clock_(clock ? std::move(clock) : WindowClock(&SteadyNowMicros)) {
  EDGE_CHECK_GT(options_.window_seconds, 0.0) << "window must be positive";
  EDGE_CHECK_GE(options_.num_subwindows, 1u) << "need at least one sub-window";
  subwindow_micros_ = std::max<uint64_t>(
      1, static_cast<uint64_t>(options_.window_seconds * 1e6 /
                               static_cast<double>(options_.num_subwindows)));
  ring_.resize(options_.num_subwindows);
}

uint64_t WindowedCounter::ClampedNowLocked() const {
  uint64_t now = clock_();
  if (now < last_now_micros_) return last_now_micros_;
  last_now_micros_ = now;
  return now;
}

void WindowedCounter::Increment(int64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t index = ClampedNowLocked() / subwindow_micros_;
  SubWindow& slot = ring_[index % ring_.size()];
  if (slot.slot_index != index) {
    slot.slot_index = index;
    slot.count = 0;
  }
  slot.count += delta;
}

int64_t WindowedCounter::ValueInWindow() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t index = ClampedNowLocked() / subwindow_micros_;
  uint64_t live_min =
      index >= ring_.size() - 1 ? index - (ring_.size() - 1) : 0;
  int64_t total = 0;
  for (const SubWindow& slot : ring_) {
    if (slot.slot_index >= live_min && slot.slot_index <= index) {
      total += slot.count;
    }
  }
  return total;
}

double WindowedCounter::RatePerSecond() const {
  return static_cast<double>(ValueInWindow()) / options_.window_seconds;
}

void WindowedCounter::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (SubWindow& slot : ring_) {
    slot.slot_index = 0;
    slot.count = 0;
  }
  last_now_micros_ = 0;
}

void Series::Append(double v) {
  std::lock_guard<std::mutex> lock(mu_);
  values_.push_back(v);
}

std::vector<double> Series::values() const {
  std::lock_guard<std::mutex> lock(mu_);
  return values_;
}

size_t Series::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return values_.size();
}

void Series::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  values_.clear();
}

Registry& Registry::Global() {
  // Intentionally leaked, like the shared ThreadPool: instrument pointers are
  // cached in function-local statics across the codebase and must outlive
  // every other static destructor.
  static Registry* registry = new Registry();
  return *registry;
}

Counter* Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Registry::GetHistogram(const std::string& name,
                                  const std::vector<double>& bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(
        bounds.empty() ? DefaultLatencyBucketsSeconds() : bounds);
  }
  return slot.get();
}

Series* Registry::GetSeries(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = series_[name];
  if (slot == nullptr) slot = std::make_unique<Series>();
  return slot.get();
}

WindowedHistogram* Registry::GetWindowedHistogram(
    const std::string& name, WindowedHistogram::Options options,
    WindowClock clock) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = windowed_histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<WindowedHistogram>(std::move(options),
                                               std::move(clock));
  }
  return slot.get();
}

WindowedCounter* Registry::GetWindowedCounter(const std::string& name,
                                              WindowedCounter::Options options,
                                              WindowClock clock) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = windowed_counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<WindowedCounter>(options, std::move(clock));
  }
  return slot.get();
}

std::string Registry::ToJson() const {
  using internal::AppendJsonDouble;
  using internal::AppendJsonString;
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\n  \"counters\": {";

  // Sorted copies so snapshots are diffable run over run.
  auto sorted = [](const auto& m) {
    std::map<std::string, typename std::decay_t<decltype(m)>::mapped_type::pointer>
        sorted_map;
    for (const auto& [name, instrument] : m) sorted_map[name] = instrument.get();
    return sorted_map;
  };

  bool first = true;
  for (const auto& [name, counter] : sorted(counters_)) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonString(&out, name);
    out += ": " + std::to_string(counter->value());
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : sorted(gauges_)) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonString(&out, name);
    out += ": ";
    AppendJsonDouble(&out, gauge->value());
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : sorted(histograms_)) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonString(&out, name);
    int64_t count = histogram->count();
    out += ": {\"count\": " + std::to_string(count);
    out += ", \"sum\": ";
    AppendJsonDouble(&out, count > 0 ? histogram->sum() : 0.0);
    out += ", \"min\": ";
    AppendJsonDouble(&out, count > 0 ? histogram->min() : 0.0);
    out += ", \"max\": ";
    AppendJsonDouble(&out, count > 0 ? histogram->max() : 0.0);
    for (double p : {50.0, 90.0, 99.0}) {
      out += ", \"p" + std::to_string(static_cast<int>(p)) + "\": ";
      AppendJsonDouble(&out, histogram->Percentile(p));
    }
    out += ", \"buckets\": [";
    const std::vector<double>& bounds = histogram->bounds();
    std::vector<int64_t> counts = histogram->BucketCounts();
    for (size_t i = 0; i < counts.size(); ++i) {
      if (i > 0) out += ", ";
      out += "{\"le\": ";
      if (i < bounds.size()) {
        AppendJsonDouble(&out, bounds[i]);
      } else {
        out += "\"inf\"";
      }
      out += ", \"count\": " + std::to_string(counts[i]) + "}";
    }
    out += "]}";
  }
  out += "\n  },\n  \"windowed_histograms\": {";
  first = true;
  for (const auto& [name, windowed] : sorted(windowed_histograms_)) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonString(&out, name);
    WindowedHistogram::Snapshot snapshot = windowed->TakeSnapshot();
    out += ": {\"window_seconds\": ";
    AppendJsonDouble(&out, snapshot.window_seconds);
    out += ", \"count\": " + std::to_string(snapshot.count);
    out += ", \"sum\": ";
    AppendJsonDouble(&out, snapshot.sum);
    out += ", \"min\": ";
    AppendJsonDouble(&out, snapshot.min);
    out += ", \"max\": ";
    AppendJsonDouble(&out, snapshot.max);
    out += ", \"p50\": ";
    AppendJsonDouble(&out, snapshot.p50);
    out += ", \"p90\": ";
    AppendJsonDouble(&out, snapshot.p90);
    out += ", \"p99\": ";
    AppendJsonDouble(&out, snapshot.p99);
    out += ", \"p999\": ";
    AppendJsonDouble(&out, snapshot.p999);
    out += ", \"rate_per_second\": ";
    AppendJsonDouble(&out, snapshot.rate_per_second);
    out += "}";
  }
  out += "\n  },\n  \"windowed_counters\": {";
  first = true;
  for (const auto& [name, windowed] : sorted(windowed_counters_)) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonString(&out, name);
    out += ": {\"window_seconds\": ";
    AppendJsonDouble(&out, windowed->window_seconds());
    out += ", \"count\": " + std::to_string(windowed->ValueInWindow());
    out += ", \"rate_per_second\": ";
    AppendJsonDouble(&out, windowed->RatePerSecond());
    out += "}";
  }
  out += "\n  },\n  \"series\": {";
  first = true;
  for (const auto& [name, series] : sorted(series_)) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonString(&out, name);
    out += ": [";
    std::vector<double> values = series->values();
    for (size_t i = 0; i < values.size(); ++i) {
      if (i > 0) out += ", ";
      AppendJsonDouble(&out, values[i]);
    }
    out += "]";
  }
  out += "\n  }\n}\n";
  return out;
}

void Registry::ResetValuesForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->ResetForTest();
  for (auto& [name, gauge] : gauges_) gauge->ResetForTest();
  for (auto& [name, histogram] : histograms_) histogram->ResetForTest();
  for (auto& [name, series] : series_) series->ResetForTest();
  for (auto& [name, windowed] : windowed_histograms_) windowed->ResetForTest();
  for (auto& [name, windowed] : windowed_counters_) windowed->ResetForTest();
}

}  // namespace edge::obs
