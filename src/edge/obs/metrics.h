#ifndef EDGE_OBS_METRICS_H_
#define EDGE_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "edge/common/stopwatch.h"

/// \file
/// Process-global metrics registry. Six instrument kinds, all thread-safe;
/// the cumulative ones are lock-free on the hot path (Series appends and the
/// windowed instruments take a mutex — they record request/epoch-rate events,
/// not per-element inner loops):
///
///   Counter   — monotonically increasing int64 (tasks executed, tweets seen).
///   Gauge     — last-write-wins double (queue depth, vocab size).
///   Histogram — fixed upper-bound buckets + sum/min/max, with interpolated
///               percentile queries (epoch seconds, predict latency).
///   Series    — append-only double vector (per-epoch NLL curve).
///   WindowedHistogram — ring of bucketed sub-windows over a sliding wall
///               clock window; p50/p99/p999 and rates over the last N seconds.
///   WindowedCounter   — event count/rate over the same sliding window.
///
/// Names follow `edge.<module>.<name>` (see DESIGN.md "Observability").
/// Instruments are created on first Get*() and live for the process lifetime,
/// so call sites may cache the returned pointer in a function-local static.
/// Registry::ToJson() serializes one snapshot of everything.

namespace edge::obs {

class Counter {
 public:
  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void ResetForTest() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void ResetForTest() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: bucket i counts observations <= bounds[i]; one
/// implicit overflow bucket counts the rest. Percentile(p) interpolates
/// linearly inside the winning bucket (the overflow bucket reports max()),
/// which is the usual fixed-bucket estimate: exact at bucket edges, at most
/// one bucket width off inside.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// +inf / -inf when empty.
  double min() const { return min_.load(std::memory_order_relaxed); }
  double max() const { return max_.load(std::memory_order_relaxed); }
  /// p in [0, 100]. Returns 0 when empty.
  double Percentile(double p) const;

  const std::vector<double>& bounds() const { return bounds_; }
  /// Snapshot of per-bucket counts; the last entry is the overflow bucket.
  std::vector<int64_t> BucketCounts() const;

  void ResetForTest();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<int64_t>> buckets_;  // bounds_.size() + 1 entries.
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

/// Default histogram bounds for second-valued timers: 1 ms .. ~2 min in
/// roughly x2.5 steps (training epochs and full fits both land mid-range).
const std::vector<double>& DefaultLatencyBucketsSeconds();

/// Clock used by the windowed instruments: microseconds on an arbitrary
/// monotonic origin. Tests inject a fake to step time deterministically.
using WindowClock = std::function<uint64_t()>;

/// The default WindowClock: steady_clock microseconds since process start.
uint64_t SteadyNowMicros();

/// Sliding-window histogram: a ring of `num_subwindows` fixed-bucket
/// sub-windows, each covering window_seconds / num_subwindows of wall time.
/// Observations land in the sub-window the clock currently points at; queries
/// aggregate only the sub-windows still inside the window, so percentiles and
/// rates describe the last N seconds instead of the process lifetime.
///
/// All operations take the instrument mutex — these record request-rate
/// events (thousands/s), not per-element inner loops, and the critical
/// section is a handful of integer ops. A clock that jumps backwards is
/// clamped monotonic: history is never unwound and nothing crashes.
class WindowedHistogram {
 public:
  struct Options {
    double window_seconds = 60.0;
    size_t num_subwindows = 6;
    /// Bucket upper bounds; empty = DefaultLatencyBucketsSeconds().
    std::vector<double> bounds;
  };

  /// `clock` overrides the time source (tests); default is SteadyNowMicros.
  explicit WindowedHistogram(Options options, WindowClock clock = nullptr);

  void Observe(double v);

  /// Aggregates over the live sub-windows. Empty window => zeros.
  struct Snapshot {
    int64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
    double p999 = 0.0;
    double rate_per_second = 0.0;
    double window_seconds = 0.0;
  };
  Snapshot TakeSnapshot() const;

  /// p in [0, 100] over the live window. Returns 0 when empty.
  double Percentile(double p) const;
  int64_t CountInWindow() const;
  /// Observations per second over the configured window length.
  double RatePerSecond() const;

  double window_seconds() const { return options_.window_seconds; }
  void ResetForTest();

 private:
  struct SubWindow {
    uint64_t slot_index = 0;  // Absolute index on the sub-window timeline.
    std::vector<int64_t> buckets;
    int64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
  };

  uint64_t ClampedNowLocked() const;

  Options options_;
  WindowClock clock_;
  uint64_t subwindow_micros_;
  mutable std::mutex mu_;
  mutable std::vector<SubWindow> ring_;
  mutable uint64_t last_now_micros_ = 0;  // Monotonic clamp.
};

/// Sliding-window counter: event count and rate over the last N seconds,
/// same ring-of-sub-windows scheme as WindowedHistogram.
class WindowedCounter {
 public:
  struct Options {
    double window_seconds = 60.0;
    size_t num_subwindows = 6;
  };

  explicit WindowedCounter(Options options, WindowClock clock = nullptr);

  void Increment(int64_t delta = 1);
  int64_t ValueInWindow() const;
  double RatePerSecond() const;
  double window_seconds() const { return options_.window_seconds; }
  void ResetForTest();

 private:
  struct SubWindow {
    uint64_t slot_index = 0;
    int64_t count = 0;
  };

  uint64_t ClampedNowLocked() const;

  Options options_;
  WindowClock clock_;
  uint64_t subwindow_micros_;
  mutable std::mutex mu_;
  mutable std::vector<SubWindow> ring_;
  mutable uint64_t last_now_micros_ = 0;
};

/// Append-only numeric series, e.g. the per-epoch training NLL. Appends are
/// mutex-guarded (coarse events only).
class Series {
 public:
  void Append(double v);
  std::vector<double> values() const;
  size_t size() const;
  void ResetForTest();

 private:
  mutable std::mutex mu_;
  std::vector<double> values_;
};

class Registry {
 public:
  /// The process-global registry every edge.* metric registers in.
  static Registry& Global();

  /// Finds or creates; the pointer stays valid for the process lifetime.
  /// A name identifies one instrument per kind.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// `bounds` applies only on first creation (must be strictly increasing;
  /// empty = DefaultLatencyBucketsSeconds()).
  Histogram* GetHistogram(const std::string& name,
                          const std::vector<double>& bounds = {});
  Series* GetSeries(const std::string& name);
  /// `options`/`clock` apply only on first creation (first caller wins; later
  /// callers share the existing instrument regardless of what they pass).
  WindowedHistogram* GetWindowedHistogram(const std::string& name,
                                          WindowedHistogram::Options options = {},
                                          WindowClock clock = nullptr);
  WindowedCounter* GetWindowedCounter(const std::string& name,
                                      WindowedCounter::Options options = {},
                                      WindowClock clock = nullptr);

  /// One JSON document with every instrument's current value, grouped by
  /// kind; histograms include count/sum/min/max, buckets and p50/p90/p99;
  /// windowed instruments report their live-window snapshot (p999 included).
  std::string ToJson() const;

  /// Zeroes every instrument in place (pointers stay valid) — test isolation.
  void ResetValuesForTest();

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::unique_ptr<Counter>> counters_;
  std::unordered_map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::unordered_map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::unordered_map<std::string, std::unique_ptr<Series>> series_;
  std::unordered_map<std::string, std::unique_ptr<WindowedHistogram>>
      windowed_histograms_;
  std::unordered_map<std::string, std::unique_ptr<WindowedCounter>>
      windowed_counters_;
};

/// Times a scope and records seconds into a histogram on destruction:
///   obs::ScopedTimer timer(obs::Registry::Global().GetHistogram(
///       "edge.core.epoch_seconds"));
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram) : histogram_(histogram) {}
  ~ScopedTimer() {
    if (histogram_ != nullptr) histogram_->Observe(watch_.ElapsedSeconds());
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Discards the measurement: nothing is recorded at destruction. For
  /// error/early-return paths (a shed request, an all-expired batch) whose
  /// truncated timings would otherwise pollute the latency histogram.
  void Cancel() { histogram_ = nullptr; }

  /// Seconds since construction, without stopping the timer.
  double ElapsedSeconds() const { return watch_.ElapsedSeconds(); }

 private:
  Histogram* histogram_;
  Stopwatch watch_;
};

}  // namespace edge::obs

#endif  // EDGE_OBS_METRICS_H_
