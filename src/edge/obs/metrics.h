#ifndef EDGE_OBS_METRICS_H_
#define EDGE_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "edge/common/stopwatch.h"

/// \file
/// Process-global metrics registry. Four instrument kinds, all thread-safe
/// and lock-free on the hot path (Series appends take a mutex — they are
/// per-epoch, not per-element):
///
///   Counter   — monotonically increasing int64 (tasks executed, tweets seen).
///   Gauge     — last-write-wins double (queue depth, vocab size).
///   Histogram — fixed upper-bound buckets + sum/min/max, with interpolated
///               percentile queries (epoch seconds, predict latency).
///   Series    — append-only double vector (per-epoch NLL curve).
///
/// Names follow `edge.<module>.<name>` (see DESIGN.md "Observability").
/// Instruments are created on first Get*() and live for the process lifetime,
/// so call sites may cache the returned pointer in a function-local static.
/// Registry::ToJson() serializes one snapshot of everything.

namespace edge::obs {

class Counter {
 public:
  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void ResetForTest() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void ResetForTest() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: bucket i counts observations <= bounds[i]; one
/// implicit overflow bucket counts the rest. Percentile(p) interpolates
/// linearly inside the winning bucket (the overflow bucket reports max()),
/// which is the usual fixed-bucket estimate: exact at bucket edges, at most
/// one bucket width off inside.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// +inf / -inf when empty.
  double min() const { return min_.load(std::memory_order_relaxed); }
  double max() const { return max_.load(std::memory_order_relaxed); }
  /// p in [0, 100]. Returns 0 when empty.
  double Percentile(double p) const;

  const std::vector<double>& bounds() const { return bounds_; }
  /// Snapshot of per-bucket counts; the last entry is the overflow bucket.
  std::vector<int64_t> BucketCounts() const;

  void ResetForTest();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<int64_t>> buckets_;  // bounds_.size() + 1 entries.
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

/// Default histogram bounds for second-valued timers: 1 ms .. ~2 min in
/// roughly x2.5 steps (training epochs and full fits both land mid-range).
const std::vector<double>& DefaultLatencyBucketsSeconds();

/// Append-only numeric series, e.g. the per-epoch training NLL. Appends are
/// mutex-guarded (coarse events only).
class Series {
 public:
  void Append(double v);
  std::vector<double> values() const;
  size_t size() const;
  void ResetForTest();

 private:
  mutable std::mutex mu_;
  std::vector<double> values_;
};

class Registry {
 public:
  /// The process-global registry every edge.* metric registers in.
  static Registry& Global();

  /// Finds or creates; the pointer stays valid for the process lifetime.
  /// A name identifies one instrument per kind.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// `bounds` applies only on first creation (must be strictly increasing;
  /// empty = DefaultLatencyBucketsSeconds()).
  Histogram* GetHistogram(const std::string& name,
                          const std::vector<double>& bounds = {});
  Series* GetSeries(const std::string& name);

  /// One JSON document with every instrument's current value, grouped by
  /// kind; histograms include count/sum/min/max, buckets and p50/p90/p99.
  std::string ToJson() const;

  /// Zeroes every instrument in place (pointers stay valid) — test isolation.
  void ResetValuesForTest();

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::unique_ptr<Counter>> counters_;
  std::unordered_map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::unordered_map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::unordered_map<std::string, std::unique_ptr<Series>> series_;
};

/// Times a scope and records seconds into a histogram on destruction:
///   obs::ScopedTimer timer(obs::Registry::Global().GetHistogram(
///       "edge.core.epoch_seconds"));
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram) : histogram_(histogram) {}
  ~ScopedTimer() { histogram_->Observe(watch_.ElapsedSeconds()); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Seconds since construction, without stopping the timer.
  double ElapsedSeconds() const { return watch_.ElapsedSeconds(); }

 private:
  Histogram* histogram_;
  Stopwatch watch_;
};

}  // namespace edge::obs

#endif  // EDGE_OBS_METRICS_H_
