#include "edge/obs/log.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <mutex>

#include "edge/common/check.h"

namespace edge::obs {

namespace {

constexpr int kUnsetLevel = -1;

/// Threshold storage: kUnsetLevel until the first query, which resolves the
/// EDGE_LOG_LEVEL environment variable exactly once.
std::atomic<int> g_level{kUnsetLevel};

std::mutex g_sink_mu;
std::FILE* g_file_sink = nullptr;     // Guarded by g_sink_mu.
std::atomic<bool> g_stderr_sink{true};

LogLevel ResolveInitialLevel() {
  const char* env = std::getenv("EDGE_LOG_LEVEL");
  LogLevel level = LogLevel::kInfo;
  if (env != nullptr && !ParseLogLevel(env, &level)) {
    std::fprintf(stderr, "edge::obs: ignoring unknown EDGE_LOG_LEVEL '%s'\n", env);
  }
  return level;
}

/// Writes one already-rendered line to every active sink, atomically with
/// respect to other loggers (single lock spans both sinks).
void WriteLine(const std::string& line) {
  std::lock_guard<std::mutex> lock(g_sink_mu);
  if (g_stderr_sink.load(std::memory_order_relaxed)) {
    std::fwrite(line.data(), 1, line.size(), stderr);
    std::fflush(stderr);
  }
  if (g_file_sink != nullptr) {
    std::fwrite(line.data(), 1, line.size(), g_file_sink);
    std::fflush(g_file_sink);
  }
}

/// EDGE_CHECK failures route through the same sinks so fatal diagnostics land
/// next to the structured log they interrupt (the process still aborts).
void CheckFailureToSinks(const char* message) {
  std::string line(message);
  line += '\n';
  WriteLine(line);
}

/// Installs the EDGE_CHECK hook for every binary that links edge_obs.
const bool g_check_hook_installed = [] {
  edge::internal::SetCheckFailureHandler(&CheckFailureToSinks);
  return true;
}();

const char* Basename(const char* path) {
  const char* base = path;
  for (const char* p = path; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  return base;
}

}  // namespace

bool ParseLogLevel(const std::string& text, LogLevel* out) {
  std::string lower;
  lower.reserve(text.size());
  for (char c : text) lower.push_back(static_cast<char>(std::tolower(c)));
  if (lower == "trace") {
    *out = LogLevel::kTrace;
  } else if (lower == "debug") {
    *out = LogLevel::kDebug;
  } else if (lower == "info") {
    *out = LogLevel::kInfo;
  } else if (lower == "warn" || lower == "warning") {
    *out = LogLevel::kWarn;
  } else if (lower == "error") {
    *out = LogLevel::kError;
  } else if (lower == "off" || lower == "none") {
    *out = LogLevel::kOff;
  } else {
    return false;
  }
  return true;
}

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  int level = g_level.load(std::memory_order_relaxed);
  if (level != kUnsetLevel) return static_cast<LogLevel>(level);
  LogLevel resolved = ResolveInitialLevel();
  // Racing first queries resolve the same env value; last store wins benignly
  // unless SetLogLevel() intervened, which compare_exchange respects.
  int expected = kUnsetLevel;
  g_level.compare_exchange_strong(expected, static_cast<int>(resolved),
                                  std::memory_order_relaxed);
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

bool LogEnabled(LogLevel level) { return level >= GetLogLevel(); }

bool SetLogFile(const std::string& path) {
  std::FILE* next = nullptr;
  if (!path.empty()) {
    next = std::fopen(path.c_str(), "a");
    if (next == nullptr) return false;
  }
  std::lock_guard<std::mutex> lock(g_sink_mu);
  if (g_file_sink != nullptr) std::fclose(g_file_sink);
  g_file_sink = next;
  return true;
}

void SetLogToStderr(bool enabled) {
  g_stderr_sink.store(enabled, std::memory_order_relaxed);
}

int DenseThreadId() {
  static std::atomic<int> next_id{0};
  thread_local int id = next_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  auto now = std::chrono::system_clock::now();
  std::time_t seconds = std::chrono::system_clock::to_time_t(now);
  int millis = static_cast<int>(
      std::chrono::duration_cast<std::chrono::milliseconds>(now.time_since_epoch())
          .count() %
      1000);
  std::tm tm_utc{};
  gmtime_r(&seconds, &tm_utc);
  char stamp[32];
  std::strftime(stamp, sizeof(stamp), "%Y-%m-%dT%H:%M:%S", &tm_utc);

  char prefix[128];
  std::snprintf(prefix, sizeof(prefix), "%s.%03d %c %s:%d tid=%d] ", stamp, millis,
                LogLevelName(level_)[0], Basename(file_), line_, DenseThreadId());
  std::string line(prefix);
  line += message_.str();
  line += fields_.str();
  line += '\n';
  WriteLine(line);
}

}  // namespace edge::obs
