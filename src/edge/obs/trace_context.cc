#include "edge/obs/trace_context.h"

#include <algorithm>

#include "edge/obs/trace.h"

namespace edge::obs {

namespace {

/// Span labels must have static storage (the trace buffer keeps pointers).
const char* kStageSpanNames[] = {
    "edge.request.ner",   "edge.request.cache", "edge.request.queue",
    "edge.request.batch", "edge.request.predict",
};

const char* kStageNames[] = {"ner", "cache", "queue", "batch", "predict"};

}  // namespace

const char* RequestStageName(RequestStage stage) {
  int i = static_cast<int>(stage);
  if (i < 0 || i >= static_cast<int>(RequestStage::kStageCount)) return "?";
  return kStageNames[i];
}

void TraceContext::Begin(RequestStage stage) {
  begin_us_[static_cast<int>(stage)] = TraceNowMicros();
}

void TraceContext::End(RequestStage stage) {
  int i = static_cast<int>(stage);
  end_us_[i] = TraceNowMicros();
  recorded_ |= 1u << i;
}

void TraceContext::SetStage(RequestStage stage, uint64_t begin_us,
                            uint64_t end_us) {
  int i = static_cast<int>(stage);
  begin_us_[i] = begin_us;
  end_us_[i] = end_us;
  recorded_ |= 1u << i;
}

bool TraceContext::HasStage(RequestStage stage) const {
  return (recorded_ & (1u << static_cast<int>(stage))) != 0;
}

double TraceContext::StageMs(RequestStage stage) const {
  if (!HasStage(stage)) return 0.0;
  int i = static_cast<int>(stage);
  if (end_us_[i] < begin_us_[i]) return 0.0;
  return static_cast<double>(end_us_[i] - begin_us_[i]) * 1e-3;
}

void TraceContext::ExportSpans() const {
  if (request_id_ == 0 || recorded_ == 0 || !TracingEnabled()) return;
  uint64_t first = 0;
  uint64_t last = 0;
  bool any = false;
  for (int i = 0; i < kStageCount; ++i) {
    if ((recorded_ & (1u << i)) == 0) continue;
    if (!any || begin_us_[i] < first) first = begin_us_[i];
    if (!any || end_us_[i] > last) last = end_us_[i];
    any = true;
    RecordAsyncSpan(kStageSpanNames[i], request_id_, begin_us_[i], end_us_[i]);
  }
  // Umbrella span so the viewer groups the stages under one request row.
  RecordAsyncSpan("edge.request", request_id_, first, last);
}

}  // namespace edge::obs
