#ifndef EDGE_OBS_EXPORTER_H_
#define EDGE_OBS_EXPORTER_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

/// \file
/// Periodic metrics exporter: a background thread that renders a JSON
/// payload every period and writes it to a file atomically (tmp + rename),
/// so a scraper reading the path never sees a torn document. This is the
/// pull-less half of the instrumentation contract for the sharded serving
/// tier: every replica drops a fresh snapshot the router/monitoring can
/// tail without a network hop.

namespace edge::obs {

class MetricsExporter {
 public:
  struct Options {
    /// Destination file; a sibling "<path>.tmp" is used for staging.
    std::string path;
    /// Seconds between exports; clamped to >= 0.01.
    double period_seconds = 10.0;
    /// Payload renderer; default is Registry::Global().ToJson(). Callers
    /// wrap it to add their own sections (edge_serve adds health).
    std::function<std::string()> payload;
  };

  /// Starts the export thread; the first export happens immediately so the
  /// file exists as soon as the process is up.
  explicit MetricsExporter(Options options);

  /// Performs one final export, then stops the thread.
  ~MetricsExporter();

  MetricsExporter(const MetricsExporter&) = delete;
  MetricsExporter& operator=(const MetricsExporter&) = delete;

  /// One synchronous export outside the periodic schedule. Returns false on
  /// write failure (also counted in edge.obs.export_failures).
  bool ExportNow();

  const std::string& path() const { return options_.path; }

  /// EDGE_METRICS_EXPORT_EVERY (seconds, strict parse) or `fallback` when
  /// unset/invalid.
  static double PeriodFromEnv(double fallback);

 private:
  void Run();

  Options options_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;  // Guarded by mu_.
  std::thread thread_;
};

}  // namespace edge::obs

#endif  // EDGE_OBS_EXPORTER_H_
