#ifndef EDGE_OBS_LOG_H_
#define EDGE_OBS_LOG_H_

#include <sstream>
#include <string>

/// \file
/// Leveled, thread-safe structured logging for the EDGE stack.
///
///   EDGE_LOG(INFO) << "epoch done" << edge::obs::Kv("nll", 1.23)
///                  << edge::obs::Kv("epoch", 7);
///
/// renders one line — `2026-08-05T12:34:56.789 I edge_model.cc:215 tid=0]
/// epoch done nll=1.23 epoch=7` — atomically (whole line under one lock) to
/// stderr and/or a file sink, so concurrent writers never interleave.
///
/// The threshold defaults to INFO, is settable via SetLogLevel(), and is
/// seeded from the EDGE_LOG_LEVEL environment variable
/// (trace|debug|info|warn|error|off) on first use. A disabled statement costs
/// one relaxed atomic load and never evaluates its stream operands.

namespace edge::obs {

enum class LogLevel {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// Parses "trace"/"debug"/"info"/"warn"/"error"/"off" (case-insensitive);
/// returns false (and leaves *out alone) for anything else.
bool ParseLogLevel(const std::string& text, LogLevel* out);

/// The short display name ("INFO", "WARN", ...).
const char* LogLevelName(LogLevel level);

/// Sets the process-wide threshold: statements below it are dropped.
void SetLogLevel(LogLevel level);

/// Current threshold (reads EDGE_LOG_LEVEL the first time it is consulted).
LogLevel GetLogLevel();

/// True when a statement at `level` would be emitted.
bool LogEnabled(LogLevel level);

/// Mirrors log lines to a file (append). An empty path closes the file sink.
/// Returns false (and logs nothing to the file) when the path cannot be
/// opened. The stderr sink is independent — see SetLogToStderr().
bool SetLogFile(const std::string& path);

/// Enables/disables the stderr sink (on by default).
void SetLogToStderr(bool enabled);

/// A small dense thread id (0 for the first logging thread, 1 for the next,
/// ...) — stable for the thread's lifetime and far more readable than
/// std::thread::id. Shared with the trace-span exporter.
int DenseThreadId();

/// A key=value structured field. Build with Kv() so any streamable value
/// works; fields render as ` key=value` appended to the message.
struct LogField {
  std::string key;
  std::string value;
};

template <typename T>
LogField Kv(const std::string& key, const T& value) {
  std::ostringstream os;
  os << value;
  return LogField{key, os.str()};
}

/// One log statement: collects the streamed message and writes it to the
/// sinks on destruction (end of the full expression).
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  LogMessage& operator<<(const LogField& field) {
    fields_ << ' ' << field.key << '=' << field.value;
    return *this;
  }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    message_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream message_;
  std::ostringstream fields_;
};

namespace internal {
inline constexpr LogLevel kSeverity_TRACE = LogLevel::kTrace;
inline constexpr LogLevel kSeverity_DEBUG = LogLevel::kDebug;
inline constexpr LogLevel kSeverity_INFO = LogLevel::kInfo;
inline constexpr LogLevel kSeverity_WARN = LogLevel::kWarn;
inline constexpr LogLevel kSeverity_ERROR = LogLevel::kError;
}  // namespace internal

}  // namespace edge::obs

/// `EDGE_LOG(INFO) << ...` — operands are not evaluated when filtered out.
/// The `if/else` shape keeps the macro safe under a dangling `else`.
#define EDGE_LOG(severity)                                                  \
  if (!::edge::obs::LogEnabled(::edge::obs::internal::kSeverity_##severity)) { \
  } else                                                                    \
    ::edge::obs::LogMessage(::edge::obs::internal::kSeverity_##severity,    \
                            __FILE__, __LINE__)

#endif  // EDGE_OBS_LOG_H_
